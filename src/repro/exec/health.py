"""Self-heal and fault-injection observability.

The stores heal torn artifacts by design — a truncated ``.rpb``
container, a half-written JSON entry or a torn journal tail reads as a
clean miss and the slot is repaired (deleted or truncated) so the next
write recovers it.  Healing *silently*, however, hides real trouble: a
disk that tears one write a day looks exactly like a cold cache.  This
module is the process-wide tally of those recoveries (and, during chaos
runs, of injected faults), folded into the same
:class:`~repro.exec.stagestore.StageCacheStats` counter plumbing that
already ships worker increments back to the parent process — so heals
observed inside a ``processes``-backend worker still reach the
``--profile`` report and ``/v1/status``.

The heal sites (:mod:`repro.exec.store`, :mod:`repro.exec.columnar`,
:mod:`repro.util.recordlog`) have no stage or configuration context, so
they report through the free functions here; every
:class:`StageCacheStats` constructed in the process registers itself as
a sink.  Increments that arrive before any sink exists (e.g. a bare
``read_payload_file`` call in a unit test) are buffered and flushed
into the first sink registered.
"""

from __future__ import annotations

from collections import Counter

__all__ = ["record_heal", "record_fault", "register_stats_sink", "reset_pending"]

#: Stats objects receiving heal/fault increments (one per StageStore).
_SINKS: list = []
#: Increments observed before the first sink registered.
_PENDING_HEALS: Counter = Counter()
_PENDING_FAULTS: Counter = Counter()


def register_stats_sink(stats) -> None:
    """Attach one ``StageCacheStats`` as a heal/fault counter sink."""
    if stats in _SINKS:
        return
    _SINKS.append(stats)
    if len(_SINKS) == 1:
        stats.heals.update(_PENDING_HEALS)
        stats.faults.update(_PENDING_FAULTS)
        _PENDING_HEALS.clear()
        _PENDING_FAULTS.clear()


def record_heal(site: str) -> None:
    """Count one corrupt-entry recovery at a named site.

    Sites: ``"container"`` (torn ``.rpb``), ``"tile"`` (torn ``.rpt``),
    ``"json"`` (torn JSON cache entry), ``"journal"`` (torn record-log
    tail).
    """
    if _SINKS:
        for stats in _SINKS:
            stats.heals[site] += 1
    else:
        _PENDING_HEALS[site] += 1


def record_fault(site: str) -> None:
    """Count one *injected* fault firing at a named site (chaos runs)."""
    if _SINKS:
        for stats in _SINKS:
            stats.faults[site] += 1
    else:
        _PENDING_FAULTS[site] += 1


def reset_pending() -> None:
    """Drop buffered increments (test isolation)."""
    _PENDING_HEALS.clear()
    _PENDING_FAULTS.clear()
