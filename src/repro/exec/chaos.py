"""``repro chaos`` — a seeded fault-injection drill with a verdict.

Runs one artefact grid twice in throwaway cache directories: once
fault-free (the reference) and once under a seeded
:class:`~repro.exec.faults.FaultPlan`, with per-cell supervision doing
the surviving.  The drill then gates on the property the whole
resilience plane exists to uphold: **the chaos run's rendered artefact
is byte-identical to the fault-free run's**, faults may cost retries
but never change a number.  The report shows what the run survived —
injected-fault firings, retries, pool respawns, self-heals, quarantines
— so CI can additionally gate on "the drill actually drilled"
(nonzero fault/retry counters).

Exit status: 0 when byte-identity holds and nothing was quarantined,
1 otherwise.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from pathlib import Path

from repro.exec.faults import FaultPlan, install_plan, reset_fault_state

__all__ = ["chaos_main", "DEFAULT_FAULTS"]

#: The default drill: every fault class armed, seeded, one firing per
#: (site, key) so the schedule is convergent under the default retry
#: budget.
DEFAULT_FAULTS = "seed=2017,kill=0.4,exc=0.4,torn=0.4,enospc=0.2,max=1"


def _build_parser() -> argparse.ArgumentParser:
    from repro.cli import _EXPERIMENTS  # lazy: repro.cli dispatches to us
    from repro.exec.backends import BACKEND_NAMES
    from repro.experiments.config import SCALES

    parser = argparse.ArgumentParser(
        prog="repro chaos",
        description="Run one artefact grid under a seeded fault schedule "
        "and verify the output is byte-identical to a fault-free run.",
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        default="figure2",
        choices=sorted(name for name, mod in _EXPERIMENTS.items() if hasattr(mod, "requests")),
        help="which grid to drill (default: figure2)",
    )
    parser.add_argument(
        "--faults",
        default=DEFAULT_FAULTS,
        metavar="SPEC",
        help=f"fault schedule (default: {DEFAULT_FAULTS})",
    )
    parser.add_argument("--scale", choices=SCALES, default=None)
    parser.add_argument(
        "--quick", action="store_true", help="shorthand for --scale quick"
    )
    parser.add_argument("--seed", type=int, default=None, help="protocol seed")
    parser.add_argument("--jobs", type=int, default=1, metavar="N")
    parser.add_argument(
        "--backend", choices=sorted(BACKEND_NAMES), default=None
    )
    parser.add_argument(
        "--cell-retries", type=int, default=None, metavar="N",
        help="retries per failed cell before quarantine (default 2)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="root for the drill's two cache areas (default: a "
        "temporary directory, removed afterwards)",
    )
    return parser


def _run_once(experiment: str, config):
    """Render one artefact under ``config``.

    Returns ``(text, scheduler, quarantine_error)`` — the scheduler
    comes back even when the run quarantined, so the drill report can
    show how far supervision got before giving up.
    """
    from repro.cli import _EXPERIMENTS
    from repro.exec.scheduler import StudyScheduler
    from repro.exec.supervise import QuarantinedCellError

    reset_fault_state()
    install_plan(None)
    scheduler = StudyScheduler(config)
    text, error = None, None
    try:
        result = _EXPERIMENTS[experiment].run(config, scheduler=scheduler)
        text = result.render()
    except QuarantinedCellError as exc:
        error = exc
    finally:
        install_plan(None)
    return text, scheduler, error


def chaos_main(argv: list[str] | None = None) -> int:
    """Entry point of ``repro chaos``; returns a process exit code."""
    from repro.exec.stagestore import stage_store_for
    from repro.experiments.config import default_config

    args = _build_parser().parse_args(argv)
    if args.quick and args.scale == "full":
        print("error: --quick conflicts with --scale full", file=sys.stderr)
        return 2
    try:
        plan = FaultPlan.parse(args.faults)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not plan.active:
        print("error: the fault spec never fires; nothing to drill", file=sys.stderr)
        return 2

    scale = "quick" if args.quick else args.scale
    overrides: dict[str, object] = {"jobs": args.jobs, "backend": args.backend}
    if args.seed is not None:
        overrides["seed"] = args.seed
    if args.cell_retries is not None:
        overrides["cell_retries"] = args.cell_retries

    keep_dir = args.cache_dir is not None
    root = Path(args.cache_dir) if keep_dir else Path(tempfile.mkdtemp(prefix="repro-chaos-"))
    try:
        clean_config = default_config(
            scale, cache_dir=str(root / "clean"), **overrides
        )
        chaos_config = default_config(
            scale, cache_dir=str(root / "chaos"), faults=args.faults, **overrides
        )
        print(f"chaos drill: {args.experiment} (plan {plan.spec()})")
        reference, _, clean_error = _run_once(args.experiment, clean_config)
        if clean_error is not None:  # pragma: no cover - broken baseline
            print(f"FAIL: fault-free reference run failed: {clean_error}", file=sys.stderr)
            return 1
        survived, scheduler, quarantined_error = _run_once(
            args.experiment, chaos_config
        )

        stats = scheduler.stats
        health = stage_store_for(chaos_config).stats
        fired = " ".join(
            f"{site}:{count}" for site, count in sorted(health.faults.items())
        )
        heals = " ".join(
            f"{site}:{count}" for site, count in sorted(health.heals.items())
        )
        print(f"injected faults: {fired or 'none fired'}")
        print(f"self-heals: {heals or 'none'}")
        print(
            f"survival: {stats.executed} executed, {stats.retries} retries, "
            f"{stats.respawns} respawns, {stats.timeouts} timeouts, "
            f"{stats.quarantined} quarantined, "
            f"{stats.store_failures} store-failures"
        )
        if quarantined_error is not None:
            print(f"FAIL: {quarantined_error}", file=sys.stderr)
            return 1
        if survived != reference:
            print(
                "FAIL: chaos output diverged from the fault-free reference",
                file=sys.stderr,
            )
            return 1
        print("byte-identity vs fault-free run: OK")
        return 0
    finally:
        if not keep_dir:
            import shutil

            shutil.rmtree(root, ignore_errors=True)
