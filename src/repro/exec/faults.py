"""The deterministic fault-injection plane.

A :class:`FaultPlan` is a seeded schedule of failures — worker
SIGKILLs, raised exceptions, torn/short writes, ``ENOSPC``, injected
latency — that the execution path must survive byte-identically.  The
plan is *deterministic by construction*: whether a fault fires at a
site is a pure function of ``(plan seed, site, key, occurrence index)``
through SHA-256, so a chaos run is replayable from its seed (exactly
under the ``serial`` backend, distributionally under parallel ones,
where per-site occurrence order depends on scheduling).

The plan travels two ways:

* through :class:`~repro.experiments.config.ExperimentConfig.faults`
  (a compact spec string, e.g. ``"seed=7,kill=0.3,torn=0.2"``) — the
  config is pickled to worker processes, so the plan follows the cells;
* through the ``REPRO_FAULTS`` environment variable, which lets CI
  inject chaos underneath an unmodified test suite or CLI invocation.

Sites:

``cell``
    Consulted by the scheduler's worker entry point before a cell
    executes.  May sleep (``latency``), raise :class:`InjectedFault`
    (``exc``), or SIGKILL the *worker* process (``kill``).  In the
    serial/threads backends — where a SIGKILL would take down the
    driver — a scheduled kill degrades to a raised
    :class:`InjectedWorkerKill`, so the retry path is still exercised.
``write``
    Consulted by the atomic writers (:func:`repro.exec.store
    .write_json_atomic`, :func:`repro.exec.columnar
    .write_payload_atomic`).  ``torn`` publishes a deliberately
    truncated entry (the self-heal path must recover it as a miss);
    ``enospc`` raises ``OSError(ENOSPC)`` before any byte lands.

Every firing is counted through :func:`repro.exec.health.record_fault`,
so it ships across the ``processes`` boundary with the stage-cache
counters and surfaces in the ``repro chaos`` report.

``max_per_key`` (default 1) bounds how often one (site, key) pair may
fire, which is what makes a 100%-rate plan *convergent*: the first
attempt fails, the retry succeeds, and the run's output stays
byte-identical to the fault-free run — the property the chaos CI job
gates.
"""

from __future__ import annotations

import errno
import hashlib
import os
import signal
import time
from collections import Counter
from dataclasses import dataclass

from repro.exec.health import record_fault

__all__ = [
    "FaultPlan",
    "InjectedFault",
    "InjectedWorkerKill",
    "active_plan",
    "install_plan",
    "reset_fault_state",
    "backoff_delay",
]


class InjectedFault(RuntimeError):
    """A failure raised by the fault plane (``exc`` faults)."""


class InjectedWorkerKill(InjectedFault):
    """A scheduled worker SIGKILL degraded to an exception.

    Raised instead of killing the process when the cell runs in the
    driver itself (serial backend, inline thread) — taking down the
    process under supervision test would kill the supervisor too.
    """


_RATE_FIELDS = ("kill", "exc", "torn", "enospc", "latency_rate")


@dataclass(frozen=True)
class FaultPlan:
    """One seeded, replayable fault schedule.

    Attributes
    ----------
    seed:
        Root of every firing decision.
    kill / exc / torn / enospc:
        Per-site firing probabilities in [0, 1].
    latency_rate / latency:
        Probability and duration (seconds) of injected sleeps at the
        ``cell`` site.
    max_per_key:
        Cap on firings per (site, key); 0 means unbounded.  The default
        of 1 makes any plan convergent under retries.
    """

    seed: int = 0
    kill: float = 0.0
    exc: float = 0.0
    torn: float = 0.0
    enospc: float = 0.0
    latency_rate: float = 0.0
    latency: float = 0.0
    max_per_key: int = 1

    @property
    def active(self) -> bool:
        """Whether any fault can ever fire."""
        return any(getattr(self, name) > 0.0 for name in _RATE_FIELDS)

    # ------------------------------------------------------------- spec
    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse a ``"seed=7,kill=0.3,torn=0.2,max=1"`` spec string.

        Keys: ``seed``, ``kill``, ``exc``, ``torn``, ``enospc``,
        ``latency`` (seconds), ``latency_rate`` (defaults to 1.0 when
        ``latency`` is set without it), ``max`` (firings per site/key;
        0 unbounded).  An empty spec is the inert plan.
        """
        spec = spec.strip()
        if not spec:
            return cls()
        values: dict[str, object] = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            key, sep, raw = part.partition("=")
            key = key.strip().lower()
            if not sep:
                raise ValueError(f"fault spec entry {part!r} is not key=value")
            try:
                if key == "seed":
                    values["seed"] = int(raw)
                elif key == "max":
                    values["max_per_key"] = int(raw)
                elif key in ("kill", "exc", "torn", "enospc", "latency_rate"):
                    values[key] = float(raw)
                elif key == "latency":
                    values["latency"] = float(raw)
                else:
                    known = "seed, kill, exc, torn, enospc, latency, latency_rate, max"
                    raise ValueError(
                        f"unknown fault spec key {key!r} (known: {known})"
                    )
            except ValueError as exc:
                if "fault spec" in str(exc):
                    raise
                raise ValueError(
                    f"unparseable fault spec value {part!r}"
                ) from None
        plan = cls(**values)
        if plan.latency > 0.0 and plan.latency_rate == 0.0:
            plan = cls(**{**values, "latency_rate": 1.0})
        for name in _RATE_FIELDS:
            rate = getattr(plan, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"fault rate {name}={rate} outside [0, 1]")
        return plan

    def spec(self) -> str:
        """The canonical spec string (inverse of :meth:`parse`)."""
        parts = [f"seed={self.seed}"]
        for name in ("kill", "exc", "torn", "enospc"):
            if getattr(self, name) > 0.0:
                parts.append(f"{name}={getattr(self, name):g}")
        if self.latency > 0.0:
            parts.append(f"latency={self.latency:g}")
            if self.latency_rate != 1.0:
                parts.append(f"latency_rate={self.latency_rate:g}")
        parts.append(f"max={self.max_per_key}")
        return ",".join(parts)

    # -------------------------------------------------------- decisions
    def _draw(self, site: str, key: str, occurrence: int) -> float:
        blob = f"{self.seed}:{site}:{key}:{occurrence}".encode()
        digest = hashlib.sha256(blob).digest()
        return int.from_bytes(digest[:8], "little") / 2**64

    def _fires(self, site: str, key: str, rate: float) -> bool:
        """Stateful decision (``write`` sites): process-local counters."""
        if rate <= 0.0:
            return False
        fired = _FIRED[(site, key)]
        if self.max_per_key and fired >= self.max_per_key:
            return False
        count = _OCCURRENCES[(site, key)]
        _OCCURRENCES[(site, key)] = count + 1
        if self._draw(site, key, count) >= rate:
            return False
        _FIRED[(site, key)] = fired + 1
        record_fault(site)
        return True

    def _fires_at(self, site: str, key: str, rate: float, occurrence: int) -> bool:
        """Stateless decision (``cell`` site): attempt-indexed.

        A killed worker takes its in-memory firing counters with it, so
        ``max_per_key`` cannot rely on process state here.  Because
        every draw is a pure function of (seed, site, key, occurrence),
        the firing *history* of earlier attempts is reconstructed
        instead — any process arrives at the same verdict, which is
        what makes a 100 %-rate kill plan convergent across respawned
        workers.
        """
        if rate <= 0.0:
            return False
        fired = sum(
            1 for occ in range(occurrence) if self._draw(site, key, occ) < rate
        )
        if self.max_per_key and fired >= self.max_per_key:
            return False
        if self._draw(site, key, occurrence) >= rate:
            return False
        record_fault(site)
        return True

    def on_cell(self, key: str, in_worker: bool, attempt: int = 1) -> None:
        """Consult the ``cell`` site before one cell executes.

        ``attempt`` is the supervisor's 1-based attempt counter; it
        indexes the decision draw, so a retried cell re-rolls instead
        of deterministically re-firing.  May sleep, raise
        :class:`InjectedFault`, or — only when the cell runs in a
        disposable worker process — SIGKILL the worker.
        """
        occurrence = max(0, attempt - 1)
        if (
            self._fires_at("latency", key, self.latency_rate, occurrence)
            and self.latency > 0
        ):
            time.sleep(self.latency)
        if self._fires_at("kill", key, self.kill, occurrence):
            if in_worker:
                os.kill(os.getpid(), signal.SIGKILL)
            raise InjectedWorkerKill(f"injected worker kill for {key}")
        if self._fires_at("exc", key, self.exc, occurrence):
            raise InjectedFault(f"injected failure for {key}")

    def on_write(self, key: str) -> str | None:
        """Consult the ``write`` site; returns ``'torn'``/``'enospc'``/None.

        ``enospc`` is raised here (before any byte lands); ``torn`` is
        returned so the writer itself can publish a truncated entry —
        only the writer knows its framing.
        """
        if self._fires("enospc", key, self.enospc):
            raise OSError(errno.ENOSPC, f"No space left on device (injected for {key})")
        if self._fires("torn", key, self.torn):
            return "torn"
        return None


#: Per-(site, key) decision-draw and firing counts of this process.
#: Process-local by design: worker processes replay their own sequence
#: from the shared seed, which keeps serial chaos runs exactly
#: reproducible and parallel ones reproducible per worker schedule.
_OCCURRENCES: Counter = Counter()
_FIRED: Counter = Counter()

_INERT = FaultPlan()
_ACTIVE: FaultPlan | None = None


def install_plan(plan: FaultPlan | None) -> None:
    """Set this process's active plan (None reverts to env/inert)."""
    global _ACTIVE
    _ACTIVE = plan


def active_plan(config=None) -> FaultPlan:
    """The plan in effect for this process.

    Precedence: an explicitly installed plan, then the ``faults`` field
    of ``config`` (when given), then ``$REPRO_FAULTS``, then inert.
    The scheduler's worker entry point passes its pickled config here,
    which is how a plan follows cells into the ``processes`` backend.
    """
    if _ACTIVE is not None:
        return _ACTIVE
    spec = getattr(config, "faults", "") if config is not None else ""
    if not spec:
        spec = os.environ.get("REPRO_FAULTS", "")
    if not spec:
        return _INERT
    return FaultPlan.parse(spec)


def reset_fault_state() -> None:
    """Forget per-site occurrence counts (test isolation)."""
    _OCCURRENCES.clear()
    _FIRED.clear()


def backoff_delay(
    seed: int, key: str, attempt: int, base: float, cap: float = 2.0
) -> float:
    """Exponential backoff with deterministic jitter.

    ``base * 2**(attempt-1)`` scaled by a jitter factor in [0.5, 1.0)
    drawn from SHA-256 of ``(seed, key, attempt)`` — retries of the
    same cell under the same root seed sleep the same schedule, so
    chaos runs replay, while distinct cells decorrelate instead of
    thundering back in lockstep.
    """
    if attempt < 1 or base <= 0.0:
        return 0.0
    digest = hashlib.sha256(f"{seed}:{key}:{attempt}".encode()).digest()
    jitter = 0.5 + int.from_bytes(digest[:8], "little") / 2**65
    return min(cap, base * (2 ** (attempt - 1))) * jitter
