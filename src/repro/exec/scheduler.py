"""The study-graph scheduler.

:class:`StudyScheduler` is the single entry point through which every
table and figure obtains its study cells.  One ``run`` call:

1. deduplicates the requested cells (preserving first-seen order),
2. satisfies what it can from the in-process memo, the on-disk
   :class:`~repro.exec.store.StudyStore` and — under ``--resume`` —
   the crash-safe :class:`~repro.exec.checkpoint.StudyCheckpoint`,
3. fans the remaining misses out over the configured
   :mod:`backend <repro.exec.backends>` under per-cell supervision
   (:mod:`repro.exec.supervise`: bounded retries, timeouts, crashed
   worker respawn, quarantine), and
4. persists and checkpoints fresh results *as each cell completes*
   before handing the full request → payload mapping back.

Determinism: cell executors draw all randomness from
:class:`~repro.util.rng.RngTree` paths derived from the configuration
seed, never from global state, so the payloads are bit-identical across
backends, worker counts and execution order.  The determinism test suite
(`tests/integration/test_exec_scheduler.py`) asserts exactly that, and
the chaos suite (`tests/integration/test_chaos.py`) extends it across
injected faults: a cell that succeeds on its second attempt must be
byte-identical to one that succeeds on its first — the scheduler
*proves* this for retried cells by comparing the fresh payload against
any surviving store entry before trusting either.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Iterable

from repro.exec.backends import ExecutionBackend, create_backend
from repro.exec.cells import CELL_LEVEL_UNCACHED, execute_request
from repro.exec.checkpoint import StudyCheckpoint
from repro.exec.faults import active_plan, install_plan
from repro.exec.request import StudyRequest
from repro.exec.stagestore import stage_store_for
from repro.exec.store import StudyStore
from repro.exec.supervise import QuarantinedCellError, RetryPolicy

__all__ = ["SchedulerStats", "StudyScheduler"]


@dataclass
class SchedulerStats:
    """Counters describing how a scheduler satisfied its requests.

    Attributes
    ----------
    requested:
        Cells asked for, including duplicates across experiments.
    deduplicated:
        Duplicate requests coalesced away.
    memo_hits / cache_hits:
        Cells served from process memory / the disk store.
    resumed:
        Uncacheable cells reloaded from the study checkpoint
        (``--resume`` after a crash).
    executed:
        Cells actually computed.
    retries / respawns / timeouts / quarantined:
        Supervision events (see :mod:`repro.exec.supervise`): failed
        attempts retried, process pools respawned after a worker died,
        per-cell timeouts observed, and cells abandoned after
        exhausting their retry budget.
    retry_verified:
        Retried cells whose payload was proven byte-identical to a
        surviving cache entry (the cache-consistency proof).
    store_failures:
        Cache writes abandoned on ``OSError`` (e.g. a full disk) —
        the run degrades to uncached rather than failing.
    """

    requested: int = 0
    deduplicated: int = 0
    memo_hits: int = 0
    cache_hits: int = 0
    resumed: int = 0
    executed: int = 0
    retries: int = 0
    respawns: int = 0
    timeouts: int = 0
    quarantined: int = 0
    retry_verified: int = 0
    store_failures: int = 0

    def describe(self) -> str:
        """One-line summary for verbose CLI output."""
        text = (
            f"{self.requested} requested, {self.deduplicated} deduplicated, "
            f"{self.memo_hits} from memory, {self.cache_hits} from disk, "
            f"{self.executed} executed"
        )
        extras = [
            f"{value} {name}"
            for name, value in (
                ("resumed", self.resumed),
                ("retries", self.retries),
                ("respawns", self.respawns),
                ("timeouts", self.timeouts),
                ("quarantined", self.quarantined),
                ("retry-verified", self.retry_verified),
                ("store-failures", self.store_failures),
            )
            if value
        ]
        if extras:
            text += ", " + ", ".join(extras)
        return text


#: Payloads whose array mass exceeds this ride back from worker
#: processes as a file handle (content-addressed store or spill area)
#: instead of pickled bytes over the result pipe.
LARGE_PAYLOAD_BYTES = 64 * 1024

#: Result markers for the reference transport.
_INLINE, _STORED, _SPILLED = "inline", "stored", "spilled"


def _execute_item(item: tuple[StudyRequest, object, int], attempt: int = 1):
    """Picklable worker entry point: one (request, config, parent_pid).

    Consults the fault plane first — an injected fault here either
    SIGKILLs the worker (``processes`` backend; degraded to a raised
    :class:`~repro.exec.faults.InjectedWorkerKill` when the cell runs
    in the driver) or raises, and supervision retries the cell.

    Returns ``((transport, value), pid, stage_stats_delta)``:

    * the stage-cache counter increments this cell produced travel back
      alongside the payload, because under the ``processes`` backend
      they land in a worker-local :func:`stage_store_for` memo the
      parent can't see — the pid lets the scheduler recognise (and skip
      re-merging) deltas produced in its own process;
    * a *large* payload computed in a foreign process does not ride the
      pickle pipe.  Cacheable cells are written to the content-addressed
      :class:`~repro.exec.store.StudyStore` (where the scheduler would
      persist them anyway) and announced as ``("stored", None)``;
      uncacheable kinds spill to a columnar hand-off file announced as
      ``("spilled", path)``.  The scheduler reattaches either via mmap.
      If the store itself fails (a real or injected ``ENOSPC``), the
      payload degrades to the inline pickle transport — slower, never
      wrong.
    """
    from repro.api.codec import payload_nbytes  # lazy: avoids api↔exec cycle

    request, config, parent_pid = item
    in_worker = os.getpid() != parent_pid
    plan = active_plan(config)
    if plan.active:
        # Install so the write sites (store/columnar), which have no
        # config in scope, see the same plan in this process.
        install_plan(plan)
        plan.on_cell(request.describe(), in_worker, attempt)
    stats = stage_store_for(config).stats
    before = stats.snapshot()
    payload = execute_request(request, config)
    result = (_INLINE, payload)
    if in_worker and payload_nbytes(payload) > LARGE_PAYLOAD_BYTES:
        store = StudyStore(config.cache_dir, config)
        if store.enabled:
            try:
                if request.kind in CELL_LEVEL_UNCACHED:
                    result = (_SPILLED, store.spill(request, payload))
                else:
                    store.store(request, payload)
                    result = (_STORED, None)
            except OSError:
                result = (_INLINE, payload)
    return result, os.getpid(), stats.delta_since(before)


def _canonical(payload) -> str:
    """Canonical JSON form of a payload (the byte-identity witness)."""
    from repro.api.codec import payload_to_jsonable

    return json.dumps(payload_to_jsonable(payload), sort_keys=True)


class StudyScheduler:
    """Deduplicating, multi-backend executor of study cells.

    Parameters
    ----------
    config:
        :class:`~repro.experiments.config.ExperimentConfig`; supplies
        the protocol (part of every cache address), the default
        backend/jobs choice and the supervision budget.
    backend:
        Override the backend instance (tests inject doubles here; a
        double without ``map_supervised`` runs unsupervised).
    """

    def __init__(self, config, backend: ExecutionBackend | None = None) -> None:
        self.config = config
        self.backend = backend or create_backend(config.backend, config.jobs)
        self.store = StudyStore(config.cache_dir, config)
        self.checkpoint = StudyCheckpoint(config.cache_dir, config)
        self.stats = SchedulerStats()
        self._memory: dict[StudyRequest, object] = {}
        plan = active_plan(config)
        if plan.active:
            # Driver-side writes (store/journal) must see the plan too.
            install_plan(plan)

    def _policy(self) -> RetryPolicy:
        return RetryPolicy(
            retries=max(0, int(self.config.cell_retries)),
            timeout=max(0.0, float(self.config.cell_timeout)),
            backoff=max(0.0, float(self.config.retry_backoff)),
            seed=self.config.seed,
        )

    # ------------------------------------------------------------ running
    def run(self, requests: Iterable[StudyRequest]) -> dict[StudyRequest, object]:
        """Execute (or fetch) every requested cell.

        Returns a mapping with one entry per *unique* request; duplicate
        requests are deduplicated before any work is scheduled.  Raises
        :class:`~repro.exec.supervise.QuarantinedCellError` — *after*
        finishing and checkpointing every other cell — when any cell
        exhausts its retry budget.
        """
        ordered = list(requests)
        unique: list[StudyRequest] = []
        seen: set[StudyRequest] = set()
        for request in ordered:
            if request not in seen:
                seen.add(request)
                unique.append(request)
        self.stats.requested += len(ordered)
        self.stats.deduplicated += len(ordered) - len(unique)

        resume = bool(self.config.resume) and self.checkpoint.enabled
        missing: list[StudyRequest] = []
        for request in unique:
            if request in self._memory:
                self.stats.memo_hits += 1
                continue
            if request.kind in CELL_LEVEL_UNCACHED:
                payload = None
                if resume and self.checkpoint.completed(self.checkpoint.digest(request)):
                    # A crashed run already finished this uncacheable
                    # cell; reload its parked payload instead of
                    # recomputing the whole stage pipeline.
                    payload = self.checkpoint.load_payload(request)
                    if payload is not None:
                        self.stats.resumed += 1
            else:
                payload = self.store.load(request)
                if payload is not None:
                    self.stats.cache_hits += 1
            if payload is not None:
                self._memory[request] = payload
            else:
                missing.append(request)

        if missing:
            parent_pid = os.getpid()
            items = [(request, self.config, parent_pid) for request in missing]
            parent_stats = stage_store_for(self.config).stats

            def finish(index: int, result, attempts: int) -> None:
                self._finish_cell(
                    missing[index], result, attempts, parent_pid, parent_stats
                )
                self.stats.executed += 1

            supervised = getattr(self.backend, "map_supervised", None)
            if supervised is not None:
                keys = [request.describe() for request in missing]
                _, report = supervised(
                    _execute_item, items, keys, self._policy(), finish
                )
                self.stats.retries += report.retries
                self.stats.respawns += report.respawns
                self.stats.timeouts += report.timeouts
                self.stats.quarantined += len(report.quarantined)
                if report.quarantined:
                    raise QuarantinedCellError(report.quarantined)
            else:
                # Test doubles (and any external backend) providing only
                # ``map``: run unsupervised, exactly as before.
                results = self.backend.map(_execute_item, items)
                for index, result in enumerate(results):
                    finish(index, result, 1)

        return {request: self._memory[request] for request in unique}

    def _finish_cell(
        self,
        request: StudyRequest,
        result,
        attempts: int,
        parent_pid: int,
        parent_stats,
    ) -> None:
        """Absorb one completed cell: merge counters, persist, journal."""
        (transport, value), pid, delta = result
        if pid != parent_pid:
            # Cell ran in a worker process: fold its stage-cache
            # traffic into this process's counters so --verbose
            # sees it.  Same-pid cells already incremented them.
            parent_stats.merge(delta)
        if transport == _STORED:
            # Worker persisted the payload content-addressed;
            # reattach via mmap.  A torn entry (killed worker)
            # degrades to recomputing the cell here.
            payload = self.store.load(request)
            if payload is None:  # pragma: no cover - crash path
                payload = execute_request(request, self.config)
        elif transport == _SPILLED:
            payload = self.store.reclaim(value)
        else:
            payload = value
        cacheable = request.kind not in CELL_LEVEL_UNCACHED
        if cacheable and transport != _STORED and self.store.enabled:
            if attempts > 1:
                # The cache-consistency proof: a retried cell must
                # produce the same bytes as any attempt that already
                # reached the store — retrying may repeat work, never
                # change results.
                existing = self.store.load(request)
                if existing is not None:
                    if _canonical(existing) != _canonical(payload):
                        raise RuntimeError(
                            f"retried cell {request.describe()} diverged from "
                            "its cached payload: retry attempts must be "
                            "byte-identical (determinism violation)"
                        )
                    self.stats.retry_verified += 1
            try:
                self.store.store(request, payload)
            except OSError:
                # A full or failing disk degrades caching, not the run.
                self.stats.store_failures += 1
        self._memory[request] = payload
        if self.checkpoint.enabled:
            try:
                self.checkpoint.record(
                    request, payload if not cacheable else None
                )
            except OSError:
                # An unjournaled completion only costs a re-execution
                # on resume; never fail a finished cell over it.
                self.stats.store_failures += 1

    def result(self, request: StudyRequest):
        """Execute (or fetch) a single cell and return its payload."""
        return self.run([request])[request]
