"""The study-graph scheduler.

:class:`StudyScheduler` is the single entry point through which every
table and figure obtains its study cells.  One ``run`` call:

1. deduplicates the requested cells (preserving first-seen order),
2. satisfies what it can from the in-process memo and the on-disk
   :class:`~repro.exec.store.StudyStore`,
3. fans the remaining misses out over the configured
   :mod:`backend <repro.exec.backends>`, and
4. persists fresh results before handing the full request → payload
   mapping back to the caller.

Determinism: cell executors draw all randomness from
:class:`~repro.util.rng.RngTree` paths derived from the configuration
seed, never from global state, so the payloads are bit-identical across
backends, worker counts and execution order.  The determinism test suite
(`tests/integration/test_exec_scheduler.py`) asserts exactly that.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Iterable

from repro.exec.backends import ExecutionBackend, create_backend
from repro.exec.cells import CELL_LEVEL_UNCACHED, execute_request
from repro.exec.request import StudyRequest
from repro.exec.stagestore import stage_store_for
from repro.exec.store import StudyStore

__all__ = ["SchedulerStats", "StudyScheduler"]


@dataclass
class SchedulerStats:
    """Counters describing how a scheduler satisfied its requests.

    Attributes
    ----------
    requested:
        Cells asked for, including duplicates across experiments.
    deduplicated:
        Duplicate requests coalesced away.
    memo_hits / cache_hits:
        Cells served from process memory / the disk store.
    executed:
        Cells actually computed.
    """

    requested: int = 0
    deduplicated: int = 0
    memo_hits: int = 0
    cache_hits: int = 0
    executed: int = 0

    def describe(self) -> str:
        """One-line summary for verbose CLI output."""
        return (
            f"{self.requested} requested, {self.deduplicated} deduplicated, "
            f"{self.memo_hits} from memory, {self.cache_hits} from disk, "
            f"{self.executed} executed"
        )


#: Payloads whose array mass exceeds this ride back from worker
#: processes as a file handle (content-addressed store or spill area)
#: instead of pickled bytes over the result pipe.
LARGE_PAYLOAD_BYTES = 64 * 1024

#: Result markers for the reference transport.
_INLINE, _STORED, _SPILLED = "inline", "stored", "spilled"


def _execute_item(item: tuple[StudyRequest, object, int]):
    """Picklable worker entry point: one (request, config, parent_pid).

    Returns ``((transport, value), pid, stage_stats_delta)``:

    * the stage-cache counter increments this cell produced travel back
      alongside the payload, because under the ``processes`` backend
      they land in a worker-local :func:`stage_store_for` memo the
      parent can't see — the pid lets the scheduler recognise (and skip
      re-merging) deltas produced in its own process;
    * a *large* payload computed in a foreign process does not ride the
      pickle pipe.  Cacheable cells are written to the content-addressed
      :class:`~repro.exec.store.StudyStore` (where the scheduler would
      persist them anyway) and announced as ``("stored", None)``;
      uncacheable kinds spill to a columnar hand-off file announced as
      ``("spilled", path)``.  The scheduler reattaches either via mmap.
    """
    from repro.api.codec import payload_nbytes  # lazy: avoids api↔exec cycle

    request, config, parent_pid = item
    stats = stage_store_for(config).stats
    before = stats.snapshot()
    payload = execute_request(request, config)
    result = (_INLINE, payload)
    if os.getpid() != parent_pid and payload_nbytes(payload) > LARGE_PAYLOAD_BYTES:
        store = StudyStore(config.cache_dir, config)
        if store.enabled:
            if request.kind in CELL_LEVEL_UNCACHED:
                result = (_SPILLED, store.spill(request, payload))
            else:
                store.store(request, payload)
                result = (_STORED, None)
    return result, os.getpid(), stats.delta_since(before)


class StudyScheduler:
    """Deduplicating, multi-backend executor of study cells.

    Parameters
    ----------
    config:
        :class:`~repro.experiments.config.ExperimentConfig`; supplies
        the protocol (part of every cache address) and the default
        backend/jobs choice.
    backend:
        Override the backend instance (tests inject doubles here).
    """

    def __init__(self, config, backend: ExecutionBackend | None = None) -> None:
        self.config = config
        self.backend = backend or create_backend(config.backend, config.jobs)
        self.store = StudyStore(config.cache_dir, config)
        self.stats = SchedulerStats()
        self._memory: dict[StudyRequest, object] = {}

    # ------------------------------------------------------------ running
    def run(self, requests: Iterable[StudyRequest]) -> dict[StudyRequest, object]:
        """Execute (or fetch) every requested cell.

        Returns a mapping with one entry per *unique* request; duplicate
        requests are deduplicated before any work is scheduled.
        """
        ordered = list(requests)
        unique: list[StudyRequest] = []
        seen: set[StudyRequest] = set()
        for request in ordered:
            if request not in seen:
                seen.add(request)
                unique.append(request)
        self.stats.requested += len(ordered)
        self.stats.deduplicated += len(ordered) - len(unique)

        missing: list[StudyRequest] = []
        for request in unique:
            if request in self._memory:
                self.stats.memo_hits += 1
                continue
            payload = (
                None
                if request.kind in CELL_LEVEL_UNCACHED
                else self.store.load(request)
            )
            if payload is not None:
                self._memory[request] = payload
                self.stats.cache_hits += 1
            else:
                missing.append(request)

        if missing:
            parent_pid = os.getpid()
            items = [(request, self.config, parent_pid) for request in missing]
            results = self.backend.map(_execute_item, items)
            parent_stats = stage_store_for(self.config).stats
            for request, ((transport, value), pid, delta) in zip(missing, results, strict=True):
                if pid != parent_pid:
                    # Cell ran in a worker process: fold its stage-cache
                    # traffic into this process's counters so --verbose
                    # sees it.  Same-pid cells already incremented them.
                    parent_stats.merge(delta)
                if transport == _STORED:
                    # Worker persisted the payload content-addressed;
                    # reattach via mmap.  A torn entry (killed worker)
                    # degrades to recomputing the cell here.
                    payload = self.store.load(request)
                    if payload is None:  # pragma: no cover - crash path
                        payload = execute_request(request, self.config)
                elif transport == _SPILLED:
                    payload = self.store.reclaim(value)
                else:
                    payload = value
                self._memory[request] = payload
                if request.kind not in CELL_LEVEL_UNCACHED and transport != _STORED:
                    self.store.store(request, payload)
            self.stats.executed += len(missing)

        return {request: self._memory[request] for request in unique}

    def result(self, request: StudyRequest):
        """Execute (or fetch) a single cell and return its payload."""
        return self.run([request])[request]
