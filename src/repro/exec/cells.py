"""Cell executor registry.

Each :class:`~repro.exec.request.StudyRequest` kind maps to a pure
function ``executor(request, config) -> payload`` living next to the
experiment that owns the computation.  Executors return JSON-shaped
payloads (dicts/lists/numbers/strings only) so the scheduler can cache
them on disk and ship them across process boundaries without custom
picklers.

The registry stores dotted ``module:function`` paths and resolves them
lazily: experiment modules import the scheduler, so importing them
eagerly here would be circular, and worker processes resolve executors
on first use anyway.
"""

from __future__ import annotations

from importlib import import_module
from typing import Callable

from repro.exec.request import StudyRequest

__all__ = ["CELL_KINDS", "CELL_LEVEL_UNCACHED", "resolve_executor", "execute_request"]

#: kind → "module:function" executor address.
CELL_KINDS: dict[str, str] = {
    "crossarch": "repro.experiments.runner:crossarch_cell",
    "figure1": "repro.experiments.figure1:figure1_cell",
    "variability": "repro.experiments.variability:variability_cell",
    "limitations": "repro.experiments.limitations:limitation_cell",
    "coalesce": "repro.experiments.coalesce:coalesce_cell",
    "coretypes": "repro.experiments.coretypes:coretype_cell",
    "scaling": "repro.experiments.scaling:scaling_cell",
    "ranks": "repro.experiments.ranks:rank_cell",
    "trace": "repro.experiments.trace:trace_cell",
}

#: Cell kinds excluded from the cell-level StudyStore.  Scaling and
#: rank cells are thin derivations over stage-cached artifacts: the
#: expensive stages (profile/rankify → measure) are already
#: content-addressed in the StageStore and *shared* across the grid
#: (three machines per (app, threads) or (app, ranks), plus the
#: crossarch cells' scalar half), so caching the derived payload a
#: second time would only duplicate bytes and hide the stage-cache
#: traffic the verbose report accounts for.
CELL_LEVEL_UNCACHED: frozenset[str] = frozenset({"scaling", "ranks"})

_RESOLVED: dict[str, Callable] = {}


def resolve_executor(kind: str) -> Callable:
    """Import and memoise the executor function for one cell kind."""
    if kind not in _RESOLVED:
        try:
            address = CELL_KINDS[kind]
        except KeyError:
            known = ", ".join(sorted(CELL_KINDS))
            raise ValueError(f"unknown cell kind {kind!r} (known: {known})") from None
        module_name, _, func_name = address.partition(":")
        _RESOLVED[kind] = getattr(import_module(module_name), func_name)
    return _RESOLVED[kind]


def execute_request(request: StudyRequest, config):
    """Run one cell to completion and return its JSON payload."""
    return resolve_executor(request.kind)(request, config)
