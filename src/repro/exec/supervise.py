"""Per-cell supervision: bounded retries, timeouts, respawn, quarantine.

The scheduler's fan-out used to assume every cell either returns or
raises; a worker that dies (OOM killer, segfaulting native extension,
an injected SIGKILL from the :mod:`fault plane <repro.exec.faults>`)
took the whole ``ProcessPoolExecutor`` — and the study — down with it.
This module wraps each backend's map with a supervisor that

* retries a failed cell up to :attr:`RetryPolicy.retries` times, with
  exponential backoff and deterministic jitter
  (:func:`repro.exec.faults.backoff_delay` — replayable by seed);
* enforces a per-cell wall-clock timeout.  On the ``processes``
  backend an overrunning cell's workers are killed and the pool is
  respawned; inline execution (serial/threads) cannot be preempted, so
  there the overrun is recorded post-hoc and the result kept;
* detects a crashed worker (``BrokenProcessPool``), respawns the pool,
  and charges the retry budget only to the cells that were *observed
  running* when it broke — innocent queued cells are resubmitted for
  free;
* quarantines a cell that exhausts its budget instead of aborting the
  grid: the rest of the study completes, then the scheduler fails the
  run with a :class:`QuarantinedCellError` diagnostic naming every
  quarantined cell and its last error.

Completion callbacks fire in the *supervisor's* process as each cell
finishes (never from a pool thread), which is what lets the scheduler
journal per-completion checkpoints that survive a driver SIGKILL.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures import ThreadPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.exec.faults import backoff_delay

__all__ = [
    "RetryPolicy",
    "CellFailure",
    "SupervisionReport",
    "QuarantinedCellError",
    "run_sequential_supervised",
    "run_threaded_supervised",
    "ProcessSupervision",
]


@dataclass(frozen=True)
class RetryPolicy:
    """Retry/timeout budget applied to every supervised cell.

    ``retries`` bounds *additional* attempts after the first (so a cell
    runs at most ``retries + 1`` times); ``timeout`` is the per-attempt
    wall clock in seconds (0 disables); ``backoff``/``seed`` feed
    :func:`~repro.exec.faults.backoff_delay`.
    """

    retries: int = 2
    timeout: float = 0.0
    backoff: float = 0.05
    seed: int = 0


@dataclass
class CellFailure:
    """One quarantined cell: its key, attempt count and last error."""

    key: str
    attempts: int
    error: str


@dataclass
class SupervisionReport:
    """What the supervisor had to do to finish (or give up on) a map."""

    retries: int = 0
    respawns: int = 0
    timeouts: int = 0
    quarantined: list = field(default_factory=list)


class QuarantinedCellError(RuntimeError):
    """Raised after the grid finishes when any cell exhausted its budget."""

    def __init__(self, failures: Sequence[CellFailure]) -> None:
        self.failures = list(failures)
        lines = "\n".join(
            f"  {f.key}: {f.attempts} attempt(s), last error: {f.error}"
            for f in self.failures
        )
        super().__init__(
            f"{len(self.failures)} cell(s) quarantined after exhausting "
            f"their retry budget:\n{lines}\n"
            "Completed cells were checkpointed; rerun with --resume after "
            "addressing the cause to execute only the quarantined cells."
        )


def run_sequential_supervised(
    fn: Callable,
    items: Sequence,
    keys: Sequence[str],
    policy: RetryPolicy,
    on_complete: Callable | None = None,
) -> tuple[list, SupervisionReport]:
    """Supervised serial map: retry inline, record post-hoc timeouts."""
    report = SupervisionReport()
    results: list = [None] * len(items)
    for index, (item, key) in enumerate(zip(items, keys, strict=True)):
        attempts = 0
        while True:
            attempts += 1
            started = time.monotonic()
            try:
                result = fn(item, attempts)
            except Exception as exc:  # supervision boundary: retry or quarantine
                if attempts > policy.retries:
                    report.quarantined.append(CellFailure(key, attempts, repr(exc)))
                    break
                report.retries += 1
                delay = backoff_delay(policy.seed, key, attempts, policy.backoff)
                if delay:
                    time.sleep(delay)
                continue
            if policy.timeout and time.monotonic() - started > policy.timeout:
                # Inline execution cannot be preempted; the overrun is
                # recorded but the (already computed) result is kept.
                report.timeouts += 1
            results[index] = result
            if on_complete is not None:
                on_complete(index, result, attempts)
            break
    return results, report


def run_threaded_supervised(
    jobs: int,
    fn: Callable,
    items: Sequence,
    keys: Sequence[str],
    policy: RetryPolicy,
    on_complete: Callable | None = None,
) -> tuple[list, SupervisionReport]:
    """Supervised thread-pool map.

    Each worker thread runs its own retry loop (failures stay on the
    thread that owns the cell); completion callbacks and report merging
    happen on the calling thread, in completion order.
    """
    if jobs <= 1 or len(items) <= 1:
        return run_sequential_supervised(fn, items, keys, policy, on_complete)
    report = SupervisionReport()
    results: list = [None] * len(items)

    def attempt_loop(index: int):
        item, key = items[index], keys[index]
        attempts, retries, timeouts = 0, 0, 0
        while True:
            attempts += 1
            started = time.monotonic()
            try:
                result = fn(item, attempts)
            except Exception as exc:  # supervision boundary: retry or quarantine
                if attempts > policy.retries:
                    return None, attempts, repr(exc), retries, timeouts
                retries += 1
                delay = backoff_delay(policy.seed, key, attempts, policy.backoff)
                if delay:
                    time.sleep(delay)
                continue
            if policy.timeout and time.monotonic() - started > policy.timeout:
                timeouts += 1
            return result, attempts, None, retries, timeouts

    with ThreadPoolExecutor(max_workers=jobs) as pool:
        futures = {pool.submit(attempt_loop, i): i for i in range(len(items))}
        for future in as_completed(futures):
            index = futures[future]
            result, attempts, error, retries, timeouts = future.result()
            report.retries += retries
            report.timeouts += timeouts
            if error is not None:
                report.quarantined.append(CellFailure(keys[index], attempts, error))
                continue
            results[index] = result
            if on_complete is not None:
                on_complete(index, result, attempts)
    return results, report


class ProcessSupervision:
    """Supervised process-pool map with crash detection and respawn.

    Unlike :meth:`ProcessPoolBackend.map`'s chunked ``pool.map`` (the
    fast path for fault-free bulk dispatch), supervision submits one
    future per cell: per-cell completion events are what enable crash
    attribution, per-cell timeouts and per-completion checkpointing.
    The extra round trips are noise for cold cells, and warm cells
    never reach a backend at all.
    """

    #: How often the supervisor samples future states (running-worker
    #: attribution and timeout enforcement both ride this clock).
    POLL_SECONDS = 0.05

    def __init__(self, jobs: int, policy: RetryPolicy) -> None:
        self.jobs = max(1, int(jobs))
        self.policy = policy

    def run(
        self,
        fn: Callable,
        items: Sequence,
        keys: Sequence[str],
        on_complete: Callable | None = None,
    ) -> tuple[list, SupervisionReport]:
        """Map with two per-cell counters kept deliberately distinct:

        * ``submits`` — how often the cell was handed to a worker.  It
          is the ``attempt`` passed to ``fn``, so a resubmitted cell
          *always* advances its fault-plane occurrence index (a killed
          worker forgets nothing that matters), and deliberately also
          advances for innocents resubmitted after a pool break.
        * ``charged`` — failures charged against the retry budget: an
          exception raised by the cell, or a pool break attributed to
          it (observed running / timeout-killed).  Cells queued behind
          a crash are *not* charged — they resubmit for free.

        Quarantine triggers on ``charged``, never on ``submits``.
        """
        report = SupervisionReport()
        results: list = [None] * len(items)
        submits = [0] * len(items)
        charged = [0] * len(items)
        pending = set(range(len(items)))
        # Backstop: a pool that keeps breaking beyond every cell's
        # combined retry budget is burning, not converging.
        max_respawns = len(items) * (self.policy.retries + 1) + 1
        while pending:
            blamed = self._drain_one_pool(
                fn, items, keys, results, submits, charged, pending,
                report, on_complete,
            )
            if pending:
                # The pool broke (worker SIGKILL or timeout kill).
                report.respawns += 1
                if report.respawns > max_respawns:
                    for index in sorted(pending):
                        report.quarantined.append(
                            CellFailure(
                                keys[index],
                                submits[index],
                                "process pool kept breaking (respawn budget "
                                f"of {max_respawns} exhausted)",
                            )
                        )
                    pending.clear()
                    break
                for index in sorted(blamed & pending):
                    charged[index] += 1
                    if charged[index] > self.policy.retries:
                        report.quarantined.append(
                            CellFailure(
                                keys[index],
                                submits[index],
                                "worker killed, crashed, or timed out while "
                                "executing this cell",
                            )
                        )
                        pending.discard(index)
                    else:
                        report.retries += 1
        return results, report

    def _drain_one_pool(
        self,
        fn: Callable,
        items: Sequence,
        keys: Sequence[str],
        results: list,
        submits: list,
        charged: list,
        pending: set,
        report: SupervisionReport,
        on_complete: Callable | None,
    ) -> set:
        """Run one pool until everything pending finishes or it breaks.

        Returns the set of indices to *blame* for a break (observed
        running, or deliberately timeout-killed); an empty set with
        ``pending`` drained means the pool completed cleanly.
        """
        workers = min(self.jobs, max(1, len(pending)))
        seen_running: dict[int, float] = {}
        timed_out: set[int] = set()
        futures: dict = {}
        retry_at: dict[int, float] = {}
        pool = ProcessPoolExecutor(max_workers=workers)

        def submit(index: int) -> None:
            submits[index] += 1
            futures[pool.submit(fn, items[index], submits[index])] = index

        try:
            for index in sorted(pending):
                submit(index)
            while futures or retry_at:
                now = time.monotonic()
                for index, ready in sorted(retry_at.items()):
                    if ready <= now:
                        del retry_at[index]
                        submit(index)
                if not futures:
                    if retry_at:
                        time.sleep(max(0.0, min(retry_at.values()) - now))
                    continue
                done, _ = wait(
                    futures, timeout=self.POLL_SECONDS,
                    return_when=FIRST_COMPLETED,
                )
                now = time.monotonic()
                for future, index in futures.items():
                    if future not in done and future.running():
                        seen_running.setdefault(index, now)
                if self.policy.timeout:
                    for future, index in futures.items():
                        if future in done or index not in seen_running:
                            continue
                        if now - seen_running[index] > self.policy.timeout:
                            timed_out.add(index)
                    if timed_out:
                        # The only way to preempt a running cell is to
                        # kill its worker; that breaks the pool, so the
                        # caller respawns and resubmits the innocents.
                        report.timeouts += len(timed_out & pending)
                        self._kill_workers(pool)
                        return timed_out
                for future in done:
                    index = futures.pop(future)
                    try:
                        result = future.result()
                    except BrokenProcessPool:
                        blamed = {
                            i for f, i in futures.items()
                            if i in seen_running and not f.done()
                        }
                        blamed |= {index} if index in seen_running else set()
                        return blamed
                    except Exception as exc:  # cell failed inside a live worker
                        charged[index] += 1
                        if charged[index] > self.policy.retries:
                            report.quarantined.append(
                                CellFailure(keys[index], submits[index], repr(exc))
                            )
                            pending.discard(index)
                        else:
                            report.retries += 1
                            retry_at[index] = now + backoff_delay(
                                self.policy.seed, keys[index],
                                charged[index], self.policy.backoff,
                            )
                        continue
                    results[index] = result
                    pending.discard(index)
                    seen_running.pop(index, None)
                    if on_complete is not None:
                        on_complete(index, result, submits[index])
            return set()
        except BrokenProcessPool:
            # Raised at submit time when the pool died between drains.
            return {i for i in seen_running if i in pending}
        finally:
            pool.shutdown(wait=False, cancel_futures=True)

    @staticmethod
    def _kill_workers(pool: ProcessPoolExecutor) -> None:
        """Forcibly kill every pool worker (private API, best effort).

        ``ProcessPoolExecutor`` has no public preemption; killing the
        workers marks the pool broken, which the supervisor treats
        exactly like a crashed worker — respawn and resubmit.
        """
        processes = getattr(pool, "_processes", None) or {}
        for process in list(processes.values()):
            try:
                process.kill()
            except (OSError, AttributeError):
                pass
