"""The binary columnar payload container (``.rpb``).

One file per cached payload, self-describing and mmap-readable::

    offset 0   magic  b"RPB1"
    offset 4   uint32 little-endian header length H
    offset 8   header: UTF-8 JSON, sorted keys
    ...        zero padding to the first 64-byte boundary
    ...        array segments, contiguous little-endian bytes,
               each starting on a 64-byte boundary

The header carries the codec version, the payload's metadata plane (the
JSON tree with ``{"__ndarray__": i}`` placeholders — see
:mod:`repro.api.codec`), and one ``{dtype, shape, offset, nbytes}``
descriptor per segment with *absolute* file offsets.  Readers therefore
need nothing but this file: :func:`read_payload_file` maps it once and
rebuilds every array as a zero-copy ``np.frombuffer`` view into the
mapping — decoding cost is one JSON header parse regardless of how many
megabytes of arrays the payload carries.

Durability and corruption behave like the JSON store: writes go to a
temp file in the same directory, are fsynced, and land via
``os.replace``; a torn or truncated file is treated as a miss and
deleted so the next write heals the slot.  Decoded arrays are
**read-only** (they alias the shared mapping); consumers that want to
mutate must copy, which none of the pipeline stages do.
"""

from __future__ import annotations

import json
import mmap
import os
import struct
import tempfile
from pathlib import Path

import numpy as np

__all__ = ["MAGIC", "SEGMENT_ALIGN", "write_payload_atomic", "read_payload_file"]

MAGIC = b"RPB1"
#: Segments start on cache-line boundaries so views are alignment-safe
#: for every dtype the pipeline emits.
SEGMENT_ALIGN = 64

_HEADER_LEN = struct.Struct("<I")


def _align(offset: int) -> int:
    return (offset + SEGMENT_ALIGN - 1) // SEGMENT_ALIGN * SEGMENT_ALIGN


def write_payload_atomic(path: Path, payload, durable: bool = True) -> int:
    """Persist one payload as a columnar container; returns bytes written.

    Atomic against concurrent readers and crashes: temp file in the
    same directory, fsync, then ``os.replace``.  ``durable=False`` skips
    the fsync — right for *self-healing* cache entries, where a
    power-cut torn container costs a recompute (bad magic/truncated
    segment → miss, see :func:`read_payload_file`), never a wrong
    result, and fsyncing hundreds of MiB of stage payloads would
    dominate the cold path it exists to accelerate.
    """
    # Imported lazily: the exec layer must not import repro.api at
    # module scope (api.builder imports exec.stagestore, which imports
    # this module — a top-level import would close that cycle).
    from repro.api.codec import encode_payload

    meta, arrays = encode_payload(payload)
    descriptors = []
    body_parts: list[bytes] = []

    # Lay the segments out twice: a dry pass to learn the header length
    # (descriptors carry absolute offsets, which depend on it), then the
    # real pass.  Descriptor digit widths could drift between passes, so
    # the second pass re-pads the header to the precomputed data start.
    for array in arrays:
        descriptors.append(
            {
                "dtype": array.dtype.str,
                "shape": list(array.shape),
                "offset": 0,
                "nbytes": int(array.nbytes),
            }
        )
    header = {"codec": 2, "meta": meta, "arrays": descriptors}
    probe = json.dumps(header, sort_keys=True).encode("utf-8")
    # Generous slack: offsets rendered at their widest plausible width.
    data_start = _align(4 + _HEADER_LEN.size + len(probe) + 16 * len(arrays) + 16)

    offset = data_start
    for descriptor, array in zip(descriptors, arrays):
        descriptor["offset"] = offset
        offset = _align(offset + array.nbytes) if array.nbytes else offset
    header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")
    header_end = 4 + _HEADER_LEN.size + len(header_bytes)
    if header_end > data_start:  # pragma: no cover - slack is generous
        raise ValueError("columnar header overflowed its offset slack")

    body_parts.append(MAGIC)
    body_parts.append(_HEADER_LEN.pack(len(header_bytes)))
    body_parts.append(header_bytes)
    body_parts.append(b"\x00" * (data_start - header_end))
    cursor = data_start
    for descriptor, array in zip(descriptors, arrays):
        if array.nbytes == 0:
            continue
        body_parts.append(b"\x00" * (descriptor["offset"] - cursor))
        # memoryview, not tobytes(): segments stream to the file without
        # an extra in-memory copy of potentially hundreds of MiB.
        body_parts.append(memoryview(array).cast("B"))
        cursor = descriptor["offset"] + array.nbytes
    total = cursor if arrays else data_start

    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, prefix=path.name, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            for part in body_parts:
                handle.write(part)
            if durable:
                handle.flush()
                # fsync before rename: os.replace is atomic in the
                # namespace but only durable once the temp file's data
                # has hit disk.
                os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return total


def read_payload_file(path: Path) -> tuple[object, int] | None:
    """Load one container zero-copy; ``(payload, nbytes)``, None on miss.

    The file is mapped read-only and every array in the payload is a
    view into that mapping (``np.frombuffer``); the mapping stays alive
    for as long as any view does.  A corrupt container (bad magic,
    truncated, undecodable header) is deleted and treated as a miss,
    exactly like a torn JSON cache entry.
    """
    from repro.api.codec import decode_payload  # lazy: see write side

    try:
        with open(path, "rb") as handle:
            size = os.fstat(handle.fileno()).st_size
            if size < 4 + _HEADER_LEN.size:
                raise ValueError("truncated container")
            buffer = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        if buffer[:4] != MAGIC:
            raise ValueError("bad magic")
        (header_len,) = _HEADER_LEN.unpack(buffer[4 : 4 + _HEADER_LEN.size])
        header_end = 4 + _HEADER_LEN.size + header_len
        if header_end > size:
            raise ValueError("truncated header")
        header = json.loads(buffer[4 + _HEADER_LEN.size : header_end])
        arrays = []
        for descriptor in header["arrays"]:
            dtype = np.dtype(descriptor["dtype"])
            shape = tuple(descriptor["shape"])
            nbytes = int(descriptor["nbytes"])
            offset = int(descriptor["offset"])
            if nbytes == 0:
                arrays.append(np.empty(shape, dtype=dtype))
                continue
            if offset + nbytes > size:
                raise ValueError("truncated segment")
            view = np.frombuffer(
                buffer, dtype=dtype, count=nbytes // dtype.itemsize, offset=offset
            )
            arrays.append(view.reshape(shape))
        return decode_payload(header["meta"], arrays), size
    except FileNotFoundError:
        return None
    except (
        OSError,
        ValueError,
        KeyError,
        IndexError,  # corrupt header: out-of-range "__ndarray__" index
        TypeError,
        json.JSONDecodeError,
    ):
        try:
            path.unlink()
        except OSError:
            pass
        return None
