"""The binary columnar payload container (``.rpb``).

One file per cached payload, self-describing and mmap-readable::

    offset 0   magic  b"RPB1"
    offset 4   uint32 little-endian header length H
    offset 8   header: UTF-8 JSON, sorted keys
    ...        zero padding to the first 64-byte boundary
    ...        array segments, contiguous little-endian bytes,
               each starting on a 64-byte boundary

The header carries the codec version, the payload's metadata plane (the
JSON tree with ``{"__ndarray__": i}`` placeholders — see
:mod:`repro.api.codec`), and one ``{dtype, shape, offset, nbytes}``
descriptor per segment with *absolute* file offsets.  Readers therefore
need nothing but this file: :func:`read_payload_file` maps it once and
rebuilds every array as a zero-copy ``np.frombuffer`` view into the
mapping — decoding cost is one JSON header parse regardless of how many
megabytes of arrays the payload carries.

Durability and corruption behave like the JSON store: writes go to a
temp file in the same directory, are fsynced, and land via
``os.replace``; a torn or truncated file is treated as a miss and
deleted so the next write heals the slot.  Decoded arrays are
**read-only** (they alias the shared mapping); consumers that want to
mutate must copy, which none of the pipeline stages do.
"""

from __future__ import annotations

import json
import mmap
import os
import struct
import tempfile
import weakref
from pathlib import Path

import numpy as np

__all__ = [
    "MAGIC",
    "TILE_MAGIC",
    "SEGMENT_ALIGN",
    "write_payload_atomic",
    "read_payload_file",
    "TraceTileWriter",
    "TraceTileReader",
    "open_reader_count",
    "unlink_when_closed",
]

MAGIC = b"RPB1"
#: Tiled (chunked, append-only) trace container — see TraceTileWriter.
TILE_MAGIC = b"RPT1"
_TILE_TRAILER_MAGIC = b"RPTF"
#: Segments start on cache-line boundaries so views are alignment-safe
#: for every dtype the pipeline emits.
SEGMENT_ALIGN = 64

_HEADER_LEN = struct.Struct("<I")
#: Tiled-container trailer: footer offset, footer length, magic.
_TILE_TRAILER = struct.Struct("<QI4s")


def _align(offset: int) -> int:
    return (offset + SEGMENT_ALIGN - 1) // SEGMENT_ALIGN * SEGMENT_ALIGN


def write_payload_atomic(path: Path, payload, durable: bool = True) -> int:
    """Persist one payload as a columnar container; returns bytes written.

    Atomic against concurrent readers and crashes: temp file in the
    same directory, fsync, then ``os.replace``.  ``durable=False`` skips
    the fsync — right for *self-healing* cache entries, where a
    power-cut torn container costs a recompute (bad magic/truncated
    segment → miss, see :func:`read_payload_file`), never a wrong
    result, and fsyncing hundreds of MiB of stage payloads would
    dominate the cold path it exists to accelerate.
    """
    # Imported lazily: the exec layer must not import repro.api at
    # module scope (api.builder imports exec.stagestore, which imports
    # this module — a top-level import would close that cycle).
    from repro.api.codec import encode_payload
    from repro.exec.faults import active_plan

    # Consult the fault plane up front: an injected ``enospc`` raises
    # before any byte lands; an injected ``torn`` write publishes a
    # truncated container the reader must heal back to a miss.
    fault = active_plan().on_write(path.name)

    meta, arrays = encode_payload(payload)
    descriptors = []
    body_parts: list[bytes] = []

    # Lay the segments out twice: a dry pass to learn the header length
    # (descriptors carry absolute offsets, which depend on it), then the
    # real pass.  Descriptor digit widths could drift between passes, so
    # the second pass re-pads the header to the precomputed data start.
    for array in arrays:
        descriptors.append(
            {
                "dtype": array.dtype.str,
                "shape": list(array.shape),
                "offset": 0,
                "nbytes": int(array.nbytes),
            }
        )
    header = {"codec": 2, "meta": meta, "arrays": descriptors}
    probe = json.dumps(header, sort_keys=True).encode("utf-8")
    # Generous slack: offsets rendered at their widest plausible width.
    data_start = _align(4 + _HEADER_LEN.size + len(probe) + 16 * len(arrays) + 16)

    offset = data_start
    for descriptor, array in zip(descriptors, arrays, strict=True):
        descriptor["offset"] = offset
        offset = _align(offset + array.nbytes) if array.nbytes else offset
    header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")
    header_end = 4 + _HEADER_LEN.size + len(header_bytes)
    if header_end > data_start:  # pragma: no cover - slack is generous
        raise ValueError("columnar header overflowed its offset slack")

    body_parts.append(MAGIC)
    body_parts.append(_HEADER_LEN.pack(len(header_bytes)))
    body_parts.append(header_bytes)
    body_parts.append(b"\x00" * (data_start - header_end))
    cursor = data_start
    for descriptor, array in zip(descriptors, arrays, strict=True):
        if array.nbytes == 0:
            continue
        body_parts.append(b"\x00" * (descriptor["offset"] - cursor))
        # memoryview, not tobytes(): segments stream to the file without
        # an extra in-memory copy of potentially hundreds of MiB.
        body_parts.append(memoryview(array).cast("B"))
        cursor = descriptor["offset"] + array.nbytes
    total = cursor if arrays else data_start

    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, prefix=path.name, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            for part in body_parts:
                handle.write(part)
            if fault == "torn":
                # A truncated container reads as bad magic / truncated
                # header / truncated segment — every case a self-healing
                # miss, never wrong bytes (asserted by the torn-write
                # property suite at every byte boundary).
                handle.flush()
                handle.truncate(max(1, total // 2))
            if durable:
                handle.flush()
                # fsync before rename: os.replace is atomic in the
                # namespace but only durable once the temp file's data
                # has hit disk.
                os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return total


def read_payload_file(path: Path) -> tuple[object, int] | None:
    """Load one container zero-copy; ``(payload, nbytes)``, None on miss.

    The file is mapped read-only and every array in the payload is a
    view into that mapping (``np.frombuffer``); the mapping stays alive
    for as long as any view does.  A corrupt container (bad magic,
    truncated, undecodable header) is deleted and treated as a miss,
    exactly like a torn JSON cache entry.
    """
    from repro.api.codec import decode_payload  # lazy: see write side

    try:
        with open(path, "rb") as handle:
            size = os.fstat(handle.fileno()).st_size
            if size < 4 + _HEADER_LEN.size:
                raise ValueError("truncated container")
            buffer = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        if buffer[:4] != MAGIC:
            raise ValueError("bad magic")
        (header_len,) = _HEADER_LEN.unpack(buffer[4 : 4 + _HEADER_LEN.size])
        header_end = 4 + _HEADER_LEN.size + header_len
        if header_end > size:
            raise ValueError("truncated header")
        header = json.loads(buffer[4 + _HEADER_LEN.size : header_end])
        arrays = []
        for descriptor in header["arrays"]:
            dtype = np.dtype(descriptor["dtype"])
            shape = tuple(descriptor["shape"])
            nbytes = int(descriptor["nbytes"])
            offset = int(descriptor["offset"])
            if nbytes == 0:
                arrays.append(np.empty(shape, dtype=dtype))
                continue
            if offset + nbytes > size:
                raise ValueError("truncated segment")
            view = np.frombuffer(
                buffer, dtype=dtype, count=nbytes // dtype.itemsize, offset=offset
            )
            arrays.append(view.reshape(shape))
        if any(array.nbytes for array in arrays):
            # The decoded payload aliases the mapping through zero-copy
            # views.  Register the mapping in the open-reader registry —
            # exactly like a TraceTileReader — so reclaim/eviction defer
            # deletion until the last view (and with it the mmap) dies;
            # the finalizer is the ``.rpb`` reader's implicit close().
            key = os.path.abspath(path)
            _track_reader_open(key)
            weakref.finalize(buffer, _track_reader_close, key)
        return decode_payload(header["meta"], arrays), size
    except FileNotFoundError:
        return None
    except (
        OSError,
        ValueError,
        KeyError,
        IndexError,  # corrupt header: out-of-range "__ndarray__" index
        TypeError,
        json.JSONDecodeError,
    ):
        from repro.exec.health import record_heal

        try:
            path.unlink()
        except OSError:
            pass
        record_heal("container")
        return None


# ---------------------------------------------------------------- tile tier
#
# The tiled trace container (``.rpt``) is the out-of-core complement to
# the payload container above.  A ``.rpb`` file is *one* payload written
# in one shot; a ``.rpt`` file is an **append-only sequence of tiles**
# — fixed-size chunks of an access/BBV/LDV trace — each a small bundle
# of named arrays, laid out so a reader can map the file once and walk
# tiles as zero-copy views without ever materialising the whole trace::
#
#     offset 0    magic  b"RPT1"
#     offset 64   tile 0 segments (64-byte aligned, sorted column order)
#     ...         tile 1 segments, ...
#     footer      UTF-8 JSON: container meta + per-tile segment index
#     trailer     uint64 footer offset, uint32 footer length, b"RPTF"
#
# The per-tile index lives in the footer (written once, at close) so
# appending a tile costs exactly its array bytes — no header rewrites.
# The trailer is fixed-size and sits at EOF, so opening a container is
# one seek + one JSON parse regardless of tile count.  Writers stage to
# a temp file and land via ``os.replace``, so a crash mid-write can
# never leave a half-visible container; a missing/torn trailer reads as
# corruption, and the reader deletes the file and reports a miss.


class TraceTileWriter:
    """Append-only writer for the tiled trace container.

    ``append`` takes one tile — a mapping of column name to array — and
    streams its segments straight to disk; only the (tiny) per-tile
    descriptor index is held in memory.  ``close`` writes the footer and
    atomically publishes the container.  Usable as a context manager;
    an exception before ``close`` discards the temp file, never a torn
    container.
    """

    def __init__(self, path: Path | str, meta: dict | None = None) -> None:
        self._path = Path(path)
        self._meta = dict(meta or {})
        self._tiles: list[dict] = []
        self._path.parent.mkdir(parents=True, exist_ok=True)
        fd, self._tmp_name = tempfile.mkstemp(
            dir=self._path.parent, prefix=self._path.name, suffix=".tmp"
        )
        self._handle = os.fdopen(fd, "wb")
        self._handle.write(TILE_MAGIC)
        self._handle.write(b"\x00" * (SEGMENT_ALIGN - len(TILE_MAGIC)))
        self._offset = SEGMENT_ALIGN
        self._closed = False

    @property
    def n_tiles(self) -> int:
        """Tiles appended so far."""
        return len(self._tiles)

    def append(self, tile: dict) -> int:
        """Append one tile of named arrays; returns its tile index."""
        if self._handle is None:
            raise ValueError("writer is closed")
        columns = {}
        for name in sorted(tile):
            array = np.ascontiguousarray(tile[name])
            pad = _align(self._offset) - self._offset
            if pad:
                self._handle.write(b"\x00" * pad)
                self._offset += pad
            columns[name] = {
                "dtype": array.dtype.str,
                "shape": list(array.shape),
                "offset": self._offset,
                "nbytes": int(array.nbytes),
            }
            if array.nbytes:
                self._handle.write(memoryview(array).cast("B"))
                self._offset += array.nbytes
        self._tiles.append(columns)
        return len(self._tiles) - 1

    def close(self, durable: bool = False) -> int:
        """Write footer + trailer and publish the container atomically.

        Returns total bytes written.  ``durable=True`` fsyncs before the
        rename (trace tiles are normally recomputable cache artifacts,
        so the default matches the spill path's crash semantics).
        """
        if self._closed:
            return self._offset
        footer = json.dumps(
            {"codec": 1, "meta": self._meta, "tiles": self._tiles},
            sort_keys=True,
        ).encode("utf-8")
        self._handle.write(footer)
        self._handle.write(_TILE_TRAILER.pack(self._offset, len(footer), _TILE_TRAILER_MAGIC))
        self._offset += len(footer) + _TILE_TRAILER.size
        if durable:
            self._handle.flush()
            os.fsync(self._handle.fileno())
        self._handle.close()
        self._handle = None
        try:
            os.replace(self._tmp_name, self._path)
        except BaseException:
            try:
                os.unlink(self._tmp_name)
            except OSError:
                pass
            raise
        self._closed = True
        return self._offset

    def abort(self) -> None:
        """Discard the temp file without publishing anything."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None
            try:
                os.unlink(self._tmp_name)
            except OSError:
                pass
        self._closed = True

    def __enter__(self) -> "TraceTileWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        else:
            self.abort()


class TraceTileReader:
    """Zero-copy tile iterator over one ``.rpt`` container.

    The file is mapped once; :meth:`tile` and iteration return dicts of
    read-only array views into that mapping, so walking a multi-GiB
    trace touches only the pages each tile actually occupies.  Open
    readers are tracked in a module registry so cache reclamation can
    defer deletion until the last reader closes (see
    :func:`unlink_when_closed`).

    A corrupt container (bad magic, missing trailer, truncated segment)
    is deleted and raises ``FileNotFoundError`` — the same self-healing
    miss semantics as :func:`read_payload_file`.
    """

    def __init__(self, path: Path | str) -> None:
        self._path = Path(path)
        self._key = os.path.abspath(self._path)
        try:
            with open(self._path, "rb") as handle:
                size = os.fstat(handle.fileno()).st_size
                if size < SEGMENT_ALIGN + _TILE_TRAILER.size:
                    raise ValueError("truncated container")
                self._buffer = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
            if self._buffer[:4] != TILE_MAGIC:
                raise ValueError("bad magic")
            footer_offset, footer_len, trailer_magic = _TILE_TRAILER.unpack(
                self._buffer[size - _TILE_TRAILER.size : size]
            )
            if trailer_magic != _TILE_TRAILER_MAGIC:
                raise ValueError("bad trailer")
            if footer_offset + footer_len + _TILE_TRAILER.size > size:
                raise ValueError("truncated footer")
            footer = json.loads(
                self._buffer[footer_offset : footer_offset + footer_len]
            )
            self.meta = footer["meta"]
            self._tiles = footer["tiles"]
            self._size = size
        except FileNotFoundError:
            raise
        except (OSError, ValueError, KeyError, TypeError, json.JSONDecodeError):
            from repro.exec.health import record_heal

            try:
                self._path.unlink()
            except OSError:
                pass
            record_heal("tile")
            raise FileNotFoundError(
                f"corrupt tiled container: {self._path}"
            ) from None
        self._open = True
        _track_reader_open(self._key)

    def __len__(self) -> int:
        return len(self._tiles)

    @property
    def n_tiles(self) -> int:
        """Number of tiles in the container."""
        return len(self._tiles)

    def tile(self, index: int) -> dict:
        """Decode tile ``index`` as ``{name: read-only ndarray view}``."""
        columns = self._tiles[index]
        out = {}
        for name, descriptor in columns.items():
            dtype = np.dtype(descriptor["dtype"])
            shape = tuple(descriptor["shape"])
            nbytes = int(descriptor["nbytes"])
            offset = int(descriptor["offset"])
            if nbytes == 0:
                out[name] = np.empty(shape, dtype=dtype)
                continue
            if offset + nbytes > self._size:
                raise ValueError(f"truncated segment in {self._path}")
            view = np.frombuffer(
                self._buffer, dtype=dtype, count=nbytes // dtype.itemsize, offset=offset
            )
            out[name] = view.reshape(shape)
        return out

    def __iter__(self):
        for index in range(len(self._tiles)):
            yield self.tile(index)

    def column(self, name: str):
        """Iterate one named column across all tiles (lazy)."""
        for index in range(len(self._tiles)):
            yield self.tile(index)[name]

    def close(self) -> None:
        """Release the mapping and this reader's deletion hold."""
        if not self._open:
            return
        self._open = False
        # Views handed out by tile() keep the mmap object alive via
        # their .base reference even after close(); dropping our
        # reference here only releases the mapping once they are gone.
        self._buffer = None
        _track_reader_close(self._key)

    def __enter__(self) -> "TraceTileReader":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass


# Open-reader registry: cache reclamation must not delete a container a
# live mmap'd reader still iterates (the reader would fault mid-walk on
# platforms without POSIX unlink-while-open semantics, and on POSIX the
# store would silently free nothing until the mapping dies anyway).
# ``unlink_when_closed`` defers deletion to the final ``close()``.  Both
# container tiers register here: ``.rpt`` readers explicitly
# (open/close), ``.rpb`` payload reads via a ``weakref.finalize`` on the
# mapping, which fires once the last zero-copy view dies.
_OPEN_READERS: dict[str, int] = {}
_DEFERRED_UNLINKS: set[str] = set()


def _track_reader_open(key: str) -> None:
    _OPEN_READERS[key] = _OPEN_READERS.get(key, 0) + 1


def _track_reader_close(key: str) -> None:
    count = _OPEN_READERS.get(key, 0) - 1
    if count > 0:
        _OPEN_READERS[key] = count
        return
    _OPEN_READERS.pop(key, None)
    if key in _DEFERRED_UNLINKS:
        _DEFERRED_UNLINKS.discard(key)
        try:
            os.unlink(key)
        except OSError:
            pass


def open_reader_count(path: Path | str) -> int:
    """Live :class:`TraceTileReader` handles on ``path`` (0 when free)."""
    return _OPEN_READERS.get(os.path.abspath(path), 0)


def unlink_when_closed(path: Path | str) -> bool:
    """Delete ``path`` now, or defer until its last open reader closes.

    Returns True when the file was unlinked immediately, False when the
    deletion was deferred (or the file was already gone).
    """
    key = os.path.abspath(path)
    if _OPEN_READERS.get(key, 0) > 0:
        _DEFERRED_UNLINKS.add(key)
        return False
    try:
        os.unlink(key)
        return True
    except OSError:
        return False
