"""Figure 1 — MCB phase behaviour and barrier-point set sensitivity.

The paper's Figure 1 plots, for MCB's ten barrier points (1 thread,
non-vectorised, x86_64), the CPI and L2D MPKI relative to the first
barrier point: the L2D MPKI climbs roughly an order of magnitude as the
particles scatter.  It also contrasts two discovered barrier-point sets
of equal size whose L2D-miss estimation errors differ strongly (<1%
versus ~8% in the paper) — the motivation for exploring several sets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.exec.request import StudyRequest
from repro.exec.scheduler import StudyScheduler
from repro.experiments.config import ExperimentConfig, default_config
from repro.util.tables import render_table

__all__ = ["Figure1", "requests", "build", "run"]


@dataclass(frozen=True)
class Figure1:
    """MCB per-barrier-point series plus the two contrasted sets.

    Attributes
    ----------
    relative_cpi / relative_mpki:
        Ten values, normalised to the first barrier point.
    set_a / set_b:
        (representatives, L2D error %) of the best and worst discovered
        sets of the same size.
    """

    relative_cpi: list[float]
    relative_mpki: list[float]
    set_a: tuple[list[int], float]
    set_b: tuple[list[int], float]

    def render(self) -> str:
        """ASCII rendering of the series and the set comparison."""
        rows = [
            (f"BP_{i + 1}", f"{c:.2f}", f"{m:.2f}")
            for i, (c, m) in enumerate(zip(self.relative_cpi, self.relative_mpki, strict=True))
        ]
        table = render_table(
            ("Barrier point", "CPI (rel. BP_1)", "L2D MPKI (rel. BP_1)"),
            rows,
            title="Figure 1: MCB phase drift (1 thread, non-vectorised, x86_64)",
        )
        sets = (
            f"\nBP Set 1 {self.set_a[0]}: L2D miss estimation error "
            f"{self.set_a[1]:.2f}%"
            f"\nBP Set 2 {self.set_b[0]}: L2D miss estimation error "
            f"{self.set_b[1]:.2f}%"
        )
        return table + sets


def requests(config: ExperimentConfig) -> list[StudyRequest]:
    """Figure 1's single cell: MCB, 1 thread, non-vectorised."""
    return [StudyRequest(kind="figure1", app="MCB", threads=1)]


def figure1_cell(request: StudyRequest, config: ExperimentConfig) -> dict:
    """Executor for the ``"figure1"`` cell (runs in scheduler workers)."""
    from repro.api.builder import build_pipeline
    from repro.hw.pmu import CYCLES, INSTRUCTIONS, L2D_MISSES
    from repro.isa.descriptors import ISA
    from repro.workloads.registry import create

    pipeline = build_pipeline(
        create(request.app),
        threads=request.threads,
        config=config.pipeline_config(),
    ).build()
    measured = pipeline.measured_means(ISA.X86_64)  # (10, 1, 4)

    cycles = measured[:, 0, CYCLES]
    instr = measured[:, 0, INSTRUCTIONS]
    l2d = measured[:, 0, L2D_MISSES]
    cpi = cycles / instr
    mpki = 1000.0 * l2d / instr

    selections = pipeline.discover()
    evaluations = pipeline.evaluate_many(selections, ISA.X86_64)
    scored = sorted(
        evaluations, key=lambda ev: ev.report.error_mean[L2D_MISSES]
    )
    best, worst = scored[0], scored[-1]

    return {
        "relative_cpi": [float(v) for v in cpi / cpi[0]],
        "relative_mpki": [float(v) for v in mpki / mpki[0]],
        "set_a": [
            [int(i) for i in best.selection.representatives],
            best.report.error_pct("l2d_misses"),
        ],
        "set_b": [
            [int(i) for i in worst.selection.representatives],
            worst.report.error_pct("l2d_misses"),
        ],
    }


def build(results: Mapping[StudyRequest, dict], config: ExperimentConfig) -> Figure1:
    """Assemble Figure 1 from its executed cell."""
    payload = results[requests(config)[0]]
    return Figure1(
        relative_cpi=[float(v) for v in payload["relative_cpi"]],
        relative_mpki=[float(v) for v in payload["relative_mpki"]],
        set_a=([int(i) for i in payload["set_a"][0]], float(payload["set_a"][1])),
        set_b=([int(i) for i in payload["set_b"][0]], float(payload["set_b"][1])),
    )


def run(
    config: ExperimentConfig | None = None,
    scheduler: StudyScheduler | None = None,
) -> Figure1:
    """Measure MCB per-barrier-point behaviour and contrast two sets."""
    config = config or default_config()
    scheduler = scheduler or StudyScheduler(config)
    return build(scheduler.run(requests(config)), config)
