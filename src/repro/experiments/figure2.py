"""Figure 2 — estimation error per app, thread count, config and metric.

For every application panel (2a-2g), the paper plots the average
absolute estimation error (bars) and maximum standard deviation (error
bars) of the four metrics, grouped by thread count, for the four
configurations x86_64 / x86_64-vect / ARMv8 / ARMv8-vect.  This driver
reproduces the full data grid behind those panels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.exec.request import StudyRequest
from repro.exec.scheduler import StudyScheduler
from repro.experiments.config import ExperimentConfig, default_config
from repro.experiments.runner import crossarch_request, decode_summaries
from repro.hw.pmu import PMU_METRICS
from repro.util.tables import render_table
from repro.workloads.registry import EVALUATED_APPS

__all__ = [
    "Figure2Point",
    "Figure2Panel",
    "Figure2",
    "requests",
    "build",
    "run",
    "PANEL_IDS",
]

#: Panel letter per application, as in the paper.
PANEL_IDS = {
    "AMGMk": "2a",
    "graph500": "2b",
    "HPCG": "2c",
    "MCB": "2d",
    "miniFE": "2e",
    "CoMD": "2f",
    "LULESH": "2g",
}

_CONFIG_ORDER = ("x86_64", "x86_64-vect", "ARMv8", "ARMv8-vect")


@dataclass(frozen=True)
class Figure2Point:
    """One bar of one panel: (threads, config, metric) → error ± std."""

    threads: int
    config_label: str
    metric: str
    error_pct: float
    std_pct: float


@dataclass(frozen=True)
class Figure2Panel:
    """All bars of one application's panel."""

    app: str
    panel_id: str
    points: list[Figure2Point]

    def series(self, config_label: str, metric: str) -> list[tuple[int, float, float]]:
        """(threads, error, std) series for one config × metric line."""
        return [
            (p.threads, p.error_pct, p.std_pct)
            for p in self.points
            if p.config_label == config_label and p.metric == metric
        ]

    def max_error(self) -> float:
        """Worst bar in the panel (LULESH ≫ the rest, as in the paper)."""
        return max(p.error_pct for p in self.points)

    def render(self) -> str:
        """ASCII rendering: one row per (metric, config)."""
        rows = []
        threads = sorted({p.threads for p in self.points})
        for metric in PMU_METRICS:
            for label in _CONFIG_ORDER:
                series = {t: (e, s) for t, e, s in self.series(label, metric)}
                if not series:
                    continue  # panel built for a subset of configs
                row = [metric, label]
                for t in threads:
                    if t in series:
                        err, std = series[t]
                        row.append(f"{err:.2f}±{std:.2f}")
                    else:
                        row.append("-")
                rows.append(tuple(row))
        headers = ("Metric", "Config") + tuple(f"{t} thr" for t in threads)
        return render_table(
            headers,
            rows,
            title=f"Figure {self.panel_id}: {self.app} avg. abs. error (%)",
        )


@dataclass(frozen=True)
class Figure2:
    """All seven panels."""

    panels: dict[str, Figure2Panel]

    def render(self) -> str:
        """ASCII rendering of every panel in paper order."""
        return "\n\n".join(
            self.panels[app].render() for app in PANEL_IDS if app in self.panels
        )


def requests(
    config: ExperimentConfig, apps: tuple[str, ...] | None = None
) -> list[StudyRequest]:
    """Study cells Figure 2 needs: every panel app × thread count."""
    return [
        crossarch_request(app, threads)
        for app in (apps or EVALUATED_APPS)
        for threads in config.thread_counts
    ]


def build(
    results: Mapping[StudyRequest, dict],
    config: ExperimentConfig,
    apps: tuple[str, ...] | None = None,
) -> Figure2:
    """Assemble the error grid from executed study cells."""
    summaries = decode_summaries(results)
    panels = {}
    for app in apps or EVALUATED_APPS:
        points = []
        for threads in config.thread_counts:
            summary = summaries[(app, threads)]
            for label in _CONFIG_ORDER:
                cfg = summary.config(label)
                for metric in PMU_METRICS:
                    points.append(
                        Figure2Point(
                            threads=threads,
                            config_label=label,
                            metric=metric,
                            error_pct=cfg.error_mean[metric],
                            std_pct=cfg.error_std[metric],
                        )
                    )
        panels[app] = Figure2Panel(app=app, panel_id=PANEL_IDS[app], points=points)
    return Figure2(panels=panels)


def run(
    config: ExperimentConfig | None = None,
    apps: tuple[str, ...] | None = None,
    scheduler: StudyScheduler | None = None,
) -> Figure2:
    """Sweep apps × thread counts and collect the error grid."""
    config = config or default_config()
    scheduler = scheduler or StudyScheduler(config)
    return build(scheduler.run(requests(config, apps)), config, apps)
