"""Distributed ranks — does the region survive the network?

The paper scopes barrier-region selection to a single shared-memory
node; this artefact opens the distributed-memory axis.  One ``"ranks"``
study cell is declared per (application, machine, ranks) over every
evaluated app, the three registered machines and rank counts 1, 2, 4, 8
(each rank a 2-thread OpenMP team on its own node), so the scheduler
deduplicates and parallelises the whole grid at once.

Per application the table reports, per (machine, ranks): the job's wall
cycles, the rank-scaling speedup and parallel efficiency against the
1-rank run on the same machine, the **communication share** (the
slowest rank's network cycles — transfer plus busy-poll wait at
collectives — as a percentage of the wall), the barrier points
selected, and the barrier-region CPI estimate against the full run's
CPI.  A representative region that stops being representative shows up
as growing CPI error; a job that merely becomes communication-bound
shows up as a growing comm share with stable CPI error — the table
separates the two failure modes.

Rank cells are derivations over stage-cached artifacts and are
deliberately *not* persisted in the cell-level StudyStore
(:data:`repro.exec.cells.CELL_LEVEL_UNCACHED`): the heavy stages are
shared through the :class:`~repro.exec.stagestore.StageStore` across
the three machines of one (app, ranks), so a re-render re-executes only
cheap reconstruction against stage-cache hits.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api.ranks import (
    RANK_COUNTS,
    RANK_MACHINES,
    RANK_THREADS,
    RankCell,
    RankResult,
    rank_unsupported_reason,
)
from repro.api.registry import machine_registry
from repro.exec.request import StudyRequest
from repro.exec.scheduler import StudyScheduler
from repro.experiments.config import (
    ExperimentConfig,
    default_config,
    grid_machines,
    register_config_machines,
)
from repro.util.tables import render_table
from repro.workloads.registry import EVALUATED_APPS

__all__ = [
    "RankTable",
    "rank_request",
    "rank_cell",
    "requests",
    "build",
    "run",
]

_HEADERS = (
    "Machine",
    "Ranks",
    "Wall Mcyc",
    "Comm Mcyc",
    "Comm %",
    "Speedup",
    "Eff (%)",
    "BPs",
    "CPI est/true",
    "CPI err (%)",
    "Note",
)


def rank_request(app: str, ranks: int, machine: str) -> StudyRequest:
    """Declare the rank cell for one (app, machine, ranks)."""
    return StudyRequest(
        kind="ranks",
        app=app,
        threads=RANK_THREADS,
        params=(("machine", machine), ("ranks", ranks)),
    )


def rank_cell(request: StudyRequest, config: ExperimentConfig) -> dict:
    """Executor for ``"ranks"`` cells (runs in scheduler workers)."""
    from repro.api.ranks import run_rank_cell
    from repro.exec.stagestore import stage_store_for

    register_config_machines(config)
    cell = run_rank_cell(
        request.app,
        request.param("machine"),
        int(request.param("ranks")),
        request.threads,
        config.pipeline_config(),
        store=stage_store_for(config),
    )
    return cell.to_payload()


def _supported(machine_name: str, ranks: int) -> bool:
    return machine_registry.get(machine_name).supports_hybrid(ranks, RANK_THREADS)


def requests(config: ExperimentConfig) -> list[StudyRequest]:
    """Every supported cell of the apps × machines × ranks grid.

    The machine axis is the three built-ins plus any ingested machines
    the config names (``--machines`` / ``--machine-spec``).
    """
    register_config_machines(config)
    return [
        rank_request(app, ranks, machine)
        for app in EVALUATED_APPS
        for machine in grid_machines(config, RANK_MACHINES)
        for ranks in RANK_COUNTS
        if _supported(machine, ranks)
    ]


@dataclass(frozen=True)
class RankTable:
    """The rank-sweep artefact: one :class:`RankResult` per app."""

    results: list[RankResult]

    def result(self, app: str) -> RankResult:
        """The rank result of one application."""
        for result in self.results:
            if result.app == app:
                return result
        raise KeyError(f"no rank result for {app!r}")

    def render(self) -> str:
        """One ASCII table per application, in evaluation order."""
        blocks = []
        for result in self.results:
            rows = []
            for machine in result.machines:
                for ranks in result.rank_counts:
                    rows.append(self._row(result, machine, ranks))
            blocks.append(
                render_table(
                    _HEADERS,
                    rows,
                    title=(
                        f"Distributed ranks — {result.app} "
                        f"({result.threads} threads/rank, scalar binaries, "
                        "x86_64 discovery)"
                    ),
                )
            )
        return "\n\n".join(blocks)

    @staticmethod
    def _row(result: RankResult, machine: str, ranks: int) -> tuple:
        reason = result.unsupported.get((machine, ranks))
        if reason is not None:
            return (
                machine, ranks, None, None, None, None, None, None, None,
                None, reason,
            )
        cell = result.cells.get((machine, ranks))
        if cell is None:
            return (
                machine, ranks, None, None, None, None, None, None, None,
                None, "not computed",
            )
        if cell.failure:
            return (
                machine, ranks, None, None, None, None, None, None, None,
                None, cell.failure,
            )
        speedup = result.speedup(machine, ranks)
        efficiency = result.efficiency_pct(machine, ranks)
        return (
            machine,
            ranks,
            f"{cell.wall_mcycles:.2f}",
            f"{cell.comm_mcycles:.2f}",
            f"{cell.comm_pct:.1f}",
            f"{speedup:.2f}x" if speedup is not None else None,
            f"{efficiency:.1f}" if efficiency is not None else None,
            f"{cell.k}/{cell.total_barrier_points}",
            f"{cell.cpi_estimate:.3f} / {cell.cpi_true:.3f}",
            f"{cell.cpi_error_pct:.2f}",
            "",
        )


def build(results, config: ExperimentConfig) -> RankTable:
    """Assemble the rank tables from executed study cells."""
    register_config_machines(config)
    machines = grid_machines(config, RANK_MACHINES)
    cells: dict[str, dict[tuple[str, int], RankCell]] = {}
    for request, payload in results.items():
        if request.kind != "ranks":
            continue
        cell = RankCell.from_payload(payload)
        cells.setdefault(cell.app, {})[(cell.machine, cell.ranks)] = cell

    unsupported = {
        (machine, ranks): rank_unsupported_reason(
            machine_registry.get(machine), RANK_THREADS
        )
        for machine in machines
        for ranks in RANK_COUNTS
        if not _supported(machine, ranks)
    }
    table_results = [
        RankResult(
            app=app,
            machines=machines,
            rank_counts=RANK_COUNTS,
            threads=RANK_THREADS,
            cells=cells.get(app, {}),
            unsupported=dict(unsupported),
        )
        for app in EVALUATED_APPS
    ]
    return RankTable(results=table_results)


def run(
    config: ExperimentConfig | None = None,
    scheduler: StudyScheduler | None = None,
) -> RankTable:
    """Build the rank-sweep tables from the scheduled grid."""
    config = config or default_config()
    scheduler = scheduler or StudyScheduler(config)
    return build(scheduler.run(requests(config)), config)
