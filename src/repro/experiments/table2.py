"""Table II — micro-architectural parameters of the two machines."""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.machines import APM_XGENE, INTEL_I7_3770
from repro.util.tables import render_table

__all__ = ["Table2", "run"]

_HEADERS = ("Platform", "Configuration")


@dataclass(frozen=True)
class Table2:
    """Rendered Table II."""

    rows: list[tuple[str, str]]

    def render(self) -> str:
        """ASCII rendering of the table."""
        return render_table(
            _HEADERS, self.rows, title="Table II: Intel and ARM evaluation systems"
        )


def run(config=None) -> Table2:
    """Build Table II from the machine descriptors."""
    return Table2(rows=[INTEL_I7_3770.table_row(), APM_XGENE.table_row()])
