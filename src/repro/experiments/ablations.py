"""Ablations of the design choices DESIGN.md calls out.

Four studies beyond the paper's own evaluation:

* **Signature composition** — cluster on BBV only, LDV only, or both.
  The combined signature is the paper's (and BarrierPoint's) choice; the
  ablation quantifies what each half contributes.
* **maxK / BIC threshold** — how the selection size and error react to
  the clustering budget.
* **Dropping insignificant barrier points** — Section VI-C notes that
  the original BarrierPoint's weight-based dropping "affects the cache
  estimations significantly"; this reproduces that observation.
* **Measurement repetitions** — how much of the paper's 20-repetition
  protocol is actually needed.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.api.builder import build_pipeline
from repro.clustering.simpoint import SimPointOptions
from repro.core.selection import BarrierPointSelection
from repro.experiments.config import ExperimentConfig, default_config
from repro.hw.measure import MeasurementProtocol
from repro.isa.descriptors import ISA
from repro.util.tables import render_table

__all__ = [
    "AblationPoint",
    "AblationResult",
    "drop_insignificant",
    "signature_ablation",
    "maxk_ablation",
    "drop_small_ablation",
    "repetitions_ablation",
]


@dataclass(frozen=True)
class AblationPoint:
    """One ablation setting and its resulting errors (percent)."""

    setting: str
    k: int
    errors: dict[str, float]


@dataclass(frozen=True)
class AblationResult:
    """A labelled series of ablation points."""

    name: str
    app: str
    threads: int
    points: list[AblationPoint]

    def render(self) -> str:
        """ASCII rendering of the ablation series."""
        cells = [
            (
                p.setting,
                p.k,
                *(f"{p.errors[m]:.2f}" for m in sorted(p.errors)),
            )
            for p in self.points
        ]
        headers = ("Setting", "k") + tuple(sorted(self.points[0].errors))
        return render_table(
            headers,
            cells,
            title=f"Ablation [{self.name}] on {self.app} ({self.threads} threads)",
        )


def drop_insignificant(
    selection: BarrierPointSelection, min_weight_fraction: float
) -> BarrierPointSelection:
    """Drop representatives below a weight share, rescaling the rest.

    Mirrors original BarrierPoint's significance filter: clusters whose
    representatives contribute less than ``min_weight_fraction`` of the
    instructions are removed and the remaining multipliers are rescaled
    so total instructions stay estimable.
    """
    if not 0.0 <= min_weight_fraction < 1.0:
        raise ValueError("min_weight_fraction must be in [0, 1)")
    total = selection.weights.sum()
    covered = selection.multipliers * selection.weights[selection.representatives]
    keep = covered / total >= min_weight_fraction
    if not keep.any():
        keep[np.argmax(covered)] = True
    scale = covered.sum() / covered[keep].sum()
    return replace(
        selection,
        representatives=selection.representatives[keep],
        multipliers=selection.multipliers[keep] * scale,
    )


def _errors_pct(report) -> dict[str, float]:
    from repro.hw.pmu import PMU_METRICS

    return {m: report.error_pct(m) for m in PMU_METRICS}


def signature_ablation(
    app, threads: int = 8, config: ExperimentConfig | None = None
) -> AblationResult:
    """BBV-only vs LDV-only vs combined signature vectors."""
    config = config or default_config()
    points = []
    for label, bbv_weight in (("BBV only", 1.0), ("LDV only", 0.0), ("BBV+LDV", 0.5)):
        pipe_cfg = replace(config.pipeline_config(), bbv_weight=bbv_weight)
        pipeline = build_pipeline(app, threads, config=pipe_cfg).build()
        selection = pipeline.discover()[0]
        report = pipeline.evaluate(selection, ISA.ARMV8).report
        points.append(
            AblationPoint(setting=label, k=selection.k, errors=_errors_pct(report))
        )
    return AblationResult("signature composition", app.name, threads, points)


def maxk_ablation(
    app,
    threads: int = 8,
    config: ExperimentConfig | None = None,
    max_ks: tuple[int, ...] = (5, 10, 20, 30),
) -> AblationResult:
    """Vary the clustering budget maxK."""
    config = config or default_config()
    points = []
    for max_k in max_ks:
        pipe_cfg = replace(
            config.pipeline_config(), simpoint=SimPointOptions(max_k=max_k)
        )
        pipeline = build_pipeline(app, threads, config=pipe_cfg).build()
        selection = pipeline.discover()[0]
        report = pipeline.evaluate(selection, ISA.X86_64).report
        points.append(
            AblationPoint(
                setting=f"maxK={max_k}", k=selection.k, errors=_errors_pct(report)
            )
        )
    return AblationResult("maxK", app.name, threads, points)


def drop_small_ablation(
    app,
    threads: int = 8,
    config: ExperimentConfig | None = None,
    thresholds: tuple[float, ...] = (0.0, 0.001, 0.005, 0.02),
) -> AblationResult:
    """Reproduce Section VI-C: dropping small BPs hurts cache estimates."""
    config = config or default_config()
    pipeline = build_pipeline(app, threads, config=config.pipeline_config()).build()
    base = pipeline.discover()[0]
    points = []
    for threshold in thresholds:
        selection = drop_insignificant(base, threshold) if threshold else base
        report = pipeline.evaluate(selection, ISA.X86_64).report
        points.append(
            AblationPoint(
                setting=f"drop<{threshold:.3f}",
                k=selection.k,
                errors=_errors_pct(report),
            )
        )
    return AblationResult("drop insignificant", app.name, threads, points)


def repetitions_ablation(
    app,
    threads: int = 8,
    config: ExperimentConfig | None = None,
    repetition_counts: tuple[int, ...] = (1, 5, 20),
) -> AblationResult:
    """Vary the measurement repetition count of Step 3."""
    config = config or default_config()
    points = []
    for reps in repetition_counts:
        pipe_cfg = replace(
            config.pipeline_config(), protocol=MeasurementProtocol(repetitions=reps)
        )
        pipeline = build_pipeline(app, threads, config=pipe_cfg).build()
        selection = pipeline.discover()[0]
        report = pipeline.evaluate(selection, ISA.ARMV8).report
        points.append(
            AblationPoint(
                setting=f"reps={reps}", k=selection.k, errors=_errors_pct(report)
            )
        )
    return AblationResult("measurement repetitions", app.name, threads, points)
