"""Experiment-level configuration.

The paper's protocol is 10 discovery runs × 20 measurement repetitions
over thread counts 1, 2, 4, 8.  ``REPRO_SCALE=quick`` (or
``--scale quick`` on the CLI) shrinks the protocol for fast smoke runs;
benches default to the full protocol.  :func:`default_config` is the
single factory both the CLI and the benchmark suite go through, so the
two can never drift apart.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace

from repro.api.types import PipelineConfig
from repro.clustering.simpoint import SimPointOptions
from repro.hw.measure import MeasurementProtocol

__all__ = [
    "ExperimentConfig",
    "default_config",
    "register_config_machines",
    "grid_machines",
    "SCALES",
]

#: Recognised protocol scales.
SCALES = ("full", "quick")


@dataclass(frozen=True)
class ExperimentConfig:
    """Shared parameters of the experiment drivers.

    Attributes
    ----------
    thread_counts:
        Team widths swept in Figure 2 (paper: 1, 2, 4, 8).
    discovery_runs / repetitions:
        The paper's 10-run discovery and 20-repetition measurement.
    seed:
        Root seed; the same seed reproduces every number exactly.
    cache_dir:
        Where the :class:`repro.exec.store.StudyStore` persists study
        cell payloads ('' disables the disk cache).
    simpoint / bbv_weight:
        Clustering options and BBV/LDV signature balance — part of the
        cache fingerprint, so changing e.g. ``max_k`` can never serve a
        stale summary.
    jobs / backend:
        Study-graph execution: worker count and backend name
        (``serial``, ``threads``, ``processes``; None picks
        ``processes`` when ``jobs > 1``).  Execution-only — neither
        affects any computed number nor the cache fingerprint.
    trace_accesses:
        Accesses per streamed-trace cell (the ``trace`` artefact).  Part
        of each trace request's identity (cache-addressed through the
        request params), scaled with the protocol: the quick grid stays
        smoke-test sized, the full grid runs paper-scale 10⁷-access
        streams out of core.
    trace_tile_size:
        Tile length the streaming kernels consume.  Execution-only:
        every streamed kernel is bit-identical across tile sizes (the
        stream itself is generated in fixed granules — see
        :data:`repro.mem.streams.GEN_BLOCK`), so this knob bounds peak
        memory without entering the cache fingerprint.
    machine_specs:
        Paths of ingested machine spec files (``repro machines ingest
        --save``; see :mod:`repro.hw.ingest`).  Loaded and registered by
        :func:`register_config_machines` — called by the CLI and at the
        top of every grid-cell executor, because worker processes start
        with only the built-in machines.
    machines:
        Extra machine names appended to the scaling/ranks/trace grids —
        the way ingested machines become first-class grid citizens.
        Names must be registered (built-in or via ``machine_specs``).
    faults:
        Fault-injection spec string (``"seed=7,kill=0.3,torn=0.2"``;
        see :class:`repro.exec.faults.FaultPlan`).  Execution-only by
        contract: an injected fault may make a cell *fail and retry*,
        never change what a successful cell computes — the chaos suite
        asserts byte-identity against fault-free runs.
    cell_retries / cell_timeout / retry_backoff:
        Per-cell supervision budget (see :mod:`repro.exec.supervise`):
        retries after the first attempt, per-attempt wall-clock seconds
        (0 disables) and the base backoff delay.  Execution-only.
    resume:
        Consult the study checkpoint (:mod:`repro.exec.checkpoint`)
        before scheduling, skipping cells a crashed run already
        finished.  Execution-only.

    All six resilience knobs are deliberately outside
    :meth:`pipeline_config`, so they never enter the cache fingerprint:
    a chaos run and a fault-free run address the *same* cells.
    """

    thread_counts: tuple[int, ...] = (1, 2, 4, 8)
    discovery_runs: int = 10
    repetitions: int = 20
    seed: int = 2017
    cache_dir: str = ".repro-cache"
    simpoint: SimPointOptions = field(default_factory=SimPointOptions)
    bbv_weight: float = 0.5
    jobs: int = 1
    backend: str | None = None
    trace_accesses: int = 10_000_000
    trace_tile_size: int = 1 << 20
    machine_specs: tuple[str, ...] = ()
    machines: tuple[str, ...] = ()
    faults: str = ""
    cell_retries: int = 2
    cell_timeout: float = 0.0
    retry_backoff: float = 0.05
    resume: bool = False

    def pipeline_config(self) -> PipelineConfig:
        """The per-configuration pipeline parameters."""
        return PipelineConfig(
            discovery_runs=self.discovery_runs,
            simpoint=self.simpoint,
            protocol=MeasurementProtocol(repetitions=self.repetitions),
            bbv_weight=self.bbv_weight,
            seed=self.seed,
        )


def register_config_machines(config: ExperimentConfig) -> None:
    """Register the config's ingested machine specs (idempotent).

    Every grid-cell executor calls this first: study cells run in
    worker processes whose registries hold only the built-in machines,
    and the spec files in ``config.machine_specs`` are how ingested
    machines travel across the process boundary.
    """
    if config.machine_specs:
        from repro.hw.ingest.spec import ensure_registered

        ensure_registered(config.machine_specs)


def grid_machines(
    config: ExperimentConfig, base: tuple[str, ...]
) -> tuple[str, ...]:
    """A grid's machine axis: the built-in base plus config extras."""
    return base + tuple(
        name for name in config.machines if name not in base
    )


def default_config(scale: str | None = None, **overrides) -> ExperimentConfig:
    """Build the configuration for one protocol scale.

    Parameters
    ----------
    scale:
        ``"full"`` (paper protocol) or ``"quick"`` (3 discovery runs,
        5 repetitions, thread counts 1 and 8).  None reads
        ``REPRO_SCALE`` from the environment, defaulting to ``full``.
    overrides:
        Any :class:`ExperimentConfig` field, applied on top of the
        scale's base values (e.g. ``seed=7``, ``jobs=4``,
        ``cache_dir=''``).
    """
    if scale is None:
        scale = os.environ.get("REPRO_SCALE", "full")
    scale = scale.lower()
    if scale == "quick":
        base = ExperimentConfig(
            thread_counts=(1, 8),
            discovery_runs=3,
            repetitions=5,
            trace_accesses=200_000,
        )
    elif scale == "full":
        # Paper-scale signature matrices make Lloyd's full-data passes
        # the clustering bottleneck; the full protocol clusters with
        # seeded mini-batch k-means while quick scale keeps the exact
        # solver as the golden oracle (tests bound one against the
        # other on shared inputs).
        base = ExperimentConfig(
            simpoint=SimPointOptions(algorithm="minibatch"),
        )
    else:
        raise ValueError(f"scale must be one of {SCALES}, got {scale!r}")
    return replace(base, **overrides) if overrides else base
