"""Experiment-level configuration.

The paper's protocol is 10 discovery runs × 20 measurement repetitions
over thread counts 1, 2, 4, 8.  ``REPRO_SCALE=quick`` shrinks the
protocol for fast smoke runs (CI, tests); benches default to the full
protocol.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.clustering.simpoint import SimPointOptions
from repro.core.pipeline import PipelineConfig
from repro.hw.measure import MeasurementProtocol

__all__ = ["ExperimentConfig", "default_config"]


@dataclass(frozen=True)
class ExperimentConfig:
    """Shared parameters of the experiment drivers.

    Attributes
    ----------
    thread_counts:
        Team widths swept in Figure 2 (paper: 1, 2, 4, 8).
    discovery_runs / repetitions:
        The paper's 10-run discovery and 20-repetition measurement.
    seed:
        Root seed; the same seed reproduces every number exactly.
    cache_dir:
        Where :class:`repro.experiments.runner.StudyRunner` persists
        study summaries ('' disables the disk cache).
    """

    thread_counts: tuple[int, ...] = (1, 2, 4, 8)
    discovery_runs: int = 10
    repetitions: int = 20
    seed: int = 2017
    cache_dir: str = ".repro-cache"

    def pipeline_config(self) -> PipelineConfig:
        """The per-configuration pipeline parameters."""
        return PipelineConfig(
            discovery_runs=self.discovery_runs,
            simpoint=SimPointOptions(),
            protocol=MeasurementProtocol(repetitions=self.repetitions),
            seed=self.seed,
        )


def default_config() -> ExperimentConfig:
    """Config honouring ``REPRO_SCALE`` (``full`` default, ``quick`` CI)."""
    scale = os.environ.get("REPRO_SCALE", "full").lower()
    if scale == "quick":
        return ExperimentConfig(
            thread_counts=(1, 8), discovery_runs=3, repetitions=5
        )
    if scale == "full":
        return ExperimentConfig()
    raise ValueError(f"REPRO_SCALE must be 'full' or 'quick', got {scale!r}")
