"""Strong scaling — does the representative region scale with the team?

The paper's tables fix the team width (Table IV reports 8 threads);
this artefact sweeps it.  One ``"scaling"`` study cell is declared per
(application, machine, threads) over every evaluated app, the three
registered scaling machines and the widths 1, 2, 4, 8, 16, so the
scheduler deduplicates and parallelises the whole grid at once.  Cells
at a width the machine cannot host scatter-first (16 on every Table II
machine) are rendered as explicit unsupported rows instead of being
scheduled.

Per application the table reports, per (machine, threads): the region's
wall cycles, the strong-scaling speedup and parallel efficiency against
the 1-thread run on the same machine, the barrier points selected, and
the barrier-region CPI estimate against the full run's CPI — the
scaling-robustness figure of merit (a representative region that stops
being representative shows up as a growing CPI error, not as a missing
row).

Scaling cells are derivations over stage-cached artifacts and are
deliberately *not* persisted in the cell-level StudyStore
(:data:`repro.exec.cells.CELL_LEVEL_UNCACHED`): the heavy stages are
shared through the :class:`~repro.exec.stagestore.StageStore` — across
the three machines of one (app, threads), and with the crossarch cells'
scalar half — so a re-render re-executes only cheap reconstruction
against stage-cache hits, which ``--verbose`` accounts for even under
the ``processes`` backend.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api.registry import machine_registry
from repro.api.scaling import (
    SCALING_MACHINES,
    SCALING_THREAD_COUNTS,
    ScalingCell,
    ScalingResult,
    unsupported_reason,
)
from repro.exec.request import StudyRequest
from repro.exec.scheduler import StudyScheduler
from repro.experiments.config import (
    ExperimentConfig,
    default_config,
    grid_machines,
    register_config_machines,
)
from repro.util.tables import render_table
from repro.workloads.registry import EVALUATED_APPS

__all__ = [
    "ScalingTable",
    "scaling_request",
    "scaling_cell",
    "requests",
    "build",
    "run",
]

_HEADERS = (
    "Machine",
    "Threads",
    "Wall Mcyc",
    "Speedup",
    "Eff (%)",
    "BPs",
    "CPI est/true",
    "CPI err (%)",
    "Note",
)


def scaling_request(app: str, threads: int, machine: str) -> StudyRequest:
    """Declare the scaling cell for one (app, machine, threads)."""
    return StudyRequest(
        kind="scaling", app=app, threads=threads, params=(("machine", machine),)
    )


def scaling_cell(request: StudyRequest, config: ExperimentConfig) -> dict:
    """Executor for ``"scaling"`` cells (runs in scheduler workers)."""
    from repro.api.scaling import run_scaling_cell
    from repro.exec.stagestore import stage_store_for

    register_config_machines(config)
    cell = run_scaling_cell(
        request.app,
        request.param("machine"),
        request.threads,
        config.pipeline_config(),
        store=stage_store_for(config),
    )
    return cell.to_payload()


def _supported(machine_name: str, threads: int) -> bool:
    # Discovery always runs on the x86_64 discovery machine (the
    # paper's Section V-A rule) at the cell's width, so a width that
    # machine cannot host is unschedulable for *any* target — relevant
    # for ingested machines with more contexts than the i7-3770.
    from repro.hw.machines import machine_for
    from repro.isa.descriptors import ISA

    return machine_registry.get(machine_name).supports_threads(
        threads
    ) and machine_for(ISA.X86_64).supports_threads(threads)


def _unsupported_reason(machine_name: str, threads: int) -> str:
    machine = machine_registry.get(machine_name)
    if not machine.supports_threads(threads):
        return unsupported_reason(machine)
    from repro.hw.machines import machine_for
    from repro.isa.descriptors import ISA

    discovery = machine_for(ISA.X86_64)
    return (
        f"x86_64 discovery ({discovery.name}) "
        f"{unsupported_reason(discovery)}"
    )


def requests(config: ExperimentConfig) -> list[StudyRequest]:
    """Every supported cell of the apps × machines × threads grid.

    The machine axis is the three built-ins plus any ingested machines
    the config names (``--machines`` / ``--machine-spec``).
    """
    register_config_machines(config)
    return [
        scaling_request(app, threads, machine)
        for app in EVALUATED_APPS
        for machine in grid_machines(config, SCALING_MACHINES)
        for threads in SCALING_THREAD_COUNTS
        if _supported(machine, threads)
    ]


@dataclass(frozen=True)
class ScalingTable:
    """The strong-scaling artefact: one :class:`ScalingResult` per app."""

    results: list[ScalingResult]

    def result(self, app: str) -> ScalingResult:
        """The scaling result of one application."""
        for result in self.results:
            if result.app == app:
                return result
        raise KeyError(f"no scaling result for {app!r}")

    def render(self) -> str:
        """One ASCII table per application, in evaluation order."""
        blocks = []
        for result in self.results:
            rows = []
            for machine in result.machines:
                for threads in result.thread_counts:
                    rows.append(self._row(result, machine, threads))
            blocks.append(
                render_table(
                    _HEADERS,
                    rows,
                    title=(
                        f"Strong scaling — {result.app} "
                        "(scalar binaries, x86_64 discovery)"
                    ),
                )
            )
        return "\n\n".join(blocks)

    @staticmethod
    def _row(result: ScalingResult, machine: str, threads: int) -> tuple:
        reason = result.unsupported.get((machine, threads))
        if reason is not None:
            return (machine, threads, None, None, None, None, None, None, reason)
        cell = result.cells.get((machine, threads))
        if cell is None:
            return (
                machine, threads, None, None, None, None, None, None,
                "not computed",
            )
        if cell.failure:
            return (machine, threads, None, None, None, None, None, None, cell.failure)
        speedup = result.speedup(machine, threads)
        efficiency = result.efficiency_pct(machine, threads)
        return (
            machine,
            threads,
            f"{cell.wall_mcycles:.2f}",
            f"{speedup:.2f}x" if speedup is not None else None,
            f"{efficiency:.1f}" if efficiency is not None else None,
            f"{cell.k}/{cell.total_barrier_points}",
            f"{cell.cpi_estimate:.3f} / {cell.cpi_true:.3f}",
            f"{cell.cpi_error_pct:.2f}",
            "",
        )


def build(results, config: ExperimentConfig) -> ScalingTable:
    """Assemble the scaling tables from executed study cells."""
    register_config_machines(config)
    machines = grid_machines(config, SCALING_MACHINES)
    cells: dict[str, dict[tuple[str, int], ScalingCell]] = {}
    for request, payload in results.items():
        if request.kind != "scaling":
            continue
        cell = ScalingCell.from_payload(payload)
        cells.setdefault(cell.app, {})[(cell.machine, cell.threads)] = cell

    unsupported = {
        (machine, threads): _unsupported_reason(machine, threads)
        for machine in machines
        for threads in SCALING_THREAD_COUNTS
        if not _supported(machine, threads)
    }
    table_results = [
        ScalingResult(
            app=app,
            machines=machines,
            thread_counts=SCALING_THREAD_COUNTS,
            cells=cells.get(app, {}),
            unsupported=dict(unsupported),
        )
        for app in EVALUATED_APPS
    ]
    return ScalingTable(results=table_results)


def run(
    config: ExperimentConfig | None = None,
    scheduler: StudyScheduler | None = None,
) -> ScalingTable:
    """Build the strong-scaling tables from the scheduled grid."""
    config = config or default_config()
    scheduler = scheduler or StudyScheduler(config)
    return build(scheduler.run(requests(config)), config)
