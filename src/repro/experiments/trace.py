"""Streamed-trace artefact: paper-scale exact signatures, out of core.

The arXiv version of the paper profiles LULESH at ~9,840 barrier points;
a production deployment of the methodology sees 10⁷–10⁸ *accesses* per
trace.  This artefact runs the exact path at that scale: for every
evaluated application it expands each static block's memory pattern into
a concrete address stream, tiles it through the streaming generators
(:func:`repro.mem.streams.iter_stream_tiles`), and collects the exact
BBV/LDV/cache signature with the carried-state streaming kernels — one
tile in memory at a time, peak RSS bounded by ``--trace-tile-size``
regardless of stream length.

Each cell also writes the tiled trace container
(:class:`repro.exec.columnar.TraceTileWriter`): per-tile BBV and LDV
rows plus L1 miss counts always, and the raw access tiles themselves at
smoke scales (full-scale line tiles would be disk-heavy and are
regenerable bit-identically from the seed).  At smoke scales the cell
additionally replays the container through the **monolithic** golden
oracles and asserts bit-identity — the PR 3/5 pattern of keeping the
slow path as the checker for the fast one.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exec.request import StudyRequest
from repro.exec.scheduler import StudyScheduler
from repro.experiments.config import (
    ExperimentConfig,
    default_config,
    register_config_machines,
)
from repro.util.tables import render_table
from repro.workloads.registry import EVALUATED_APPS

__all__ = [
    "TRACE_THREADS",
    "TraceTable",
    "trace_request",
    "trace_cell",
    "requests",
    "build",
    "run",
]

#: Team width the streamed traces model (the paper's Table IV width).
TRACE_THREADS = 8

#: Raw access tiles are persisted in the container only below this
#: stream length; larger streams store the per-tile signature columns
#: and regenerate lines from the seed when re-walked.
_STORE_LINES_MAX = 1 << 22

_HEADERS = (
    "App",
    "Accesses",
    "Tiles",
    "Distinct lines",
    "L1D miss (%)",
    "L2 miss (%)",
    "Hot block share (%)",
    "Oracle",
)


def trace_request(
    app: str, accesses: int, machine: str | None = None
) -> StudyRequest:
    """Declare the streamed-trace cell for one application.

    ``machine`` switches the streamed cache hierarchy to an ingested
    machine's L1D/L2 geometry.  The parameter enters the request only
    when set, so default cells keep their original cache identity.
    """
    params: tuple = (("accesses", int(accesses)),)
    if machine is not None:
        params += (("machine", machine),)
    return StudyRequest(
        kind="trace", app=app, threads=TRACE_THREADS, params=params
    )


def requests(config: ExperimentConfig) -> list[StudyRequest]:
    """One streamed-trace cell per application — and per extra machine."""
    register_config_machines(config)
    default_rows = [
        trace_request(app, config.trace_accesses) for app in EVALUATED_APPS
    ]
    machine_rows = [
        trace_request(app, config.trace_accesses, machine)
        for machine in config.machines
        for app in EVALUATED_APPS
    ]
    return default_rows + machine_rows


def _trace_blocks(app: str, threads: int):
    """The app's static block universe: ``(uid, pattern, instr/access)``."""
    from repro.isa.descriptors import ISA
    from repro.workloads.registry import create

    program = create(app).program(threads, ISA.X86_64)
    blocks = []
    for template in program.templates:
        for block in template.blocks:
            accesses = max(float(block.mix.memory_accesses), 1e-9)
            blocks.append(
                (block.uid, block.pattern, block.static_instructions / accesses)
            )
    return blocks


def _container_path(config: ExperimentConfig, request: StudyRequest):
    from pathlib import Path

    if not config.cache_dir:
        return None
    accesses = request.param("accesses")
    machine = request.param("machine")
    suffix = ""
    if machine is not None:
        slug = "".join(c if c.isalnum() else "-" for c in str(machine))
        suffix = f"_m{slug}"
    return (
        Path(config.cache_dir)
        / "traces"
        / f"{request.app}_t{request.threads}_a{accesses}{suffix}.rpt"
    )


def trace_cell(request: StudyRequest, config: ExperimentConfig) -> dict:
    """Executor for ``"trace"`` cells: stream, collect, verify, persist."""
    from repro.exec.columnar import TraceTileWriter
    from repro.instrumentation.streamed import StreamedSignatureCollector
    from repro.mem.streams import iter_stream_tiles

    accesses = int(request.param("accesses"))
    tile_size = int(config.trace_tile_size)
    register_config_machines(config)
    machine_name = request.param("machine")
    levels = None
    if machine_name is not None:
        # Ingested-machine cells stream through that machine's L1D/L2
        # geometry instead of the default hierarchy.
        from repro.api.registry import machine_registry

        m = machine_registry.get(str(machine_name))
        levels = (
            ("L1D", m.l1d.size_bytes, m.l1d.associativity),
            ("L2", m.l2.size_bytes, m.l2.associativity),
        )
    blocks = _trace_blocks(request.app, request.threads)
    share = accesses // len(blocks)
    budgets = [share] * len(blocks)
    budgets[0] += accesses - share * len(blocks)

    store_lines = accesses <= _STORE_LINES_MAX
    path = _container_path(config, request)
    writer = None
    if path is not None:
        writer = TraceTileWriter(
            path,
            meta={
                "app": request.app,
                "threads": request.threads,
                "accesses": accesses,
                "seed": config.seed,
                "blocks": [uid for uid, _, _ in blocks],
                "stores_lines": store_lines,
                "machine": machine_name,
            },
        )

    if levels is not None:
        collector = StreamedSignatureCollector(n_blocks=len(blocks), levels=levels)
    else:
        collector = StreamedSignatureCollector(n_blocks=len(blocks))
    try:
        for index, ((_uid, pattern, ipa), budget) in enumerate(
            zip(blocks, budgets, strict=True)
        ):
            if budget <= 0:
                continue
            seed = _block_seed(config.seed, request.app, index)
            for tile in iter_stream_tiles(
                pattern, budget, seed, tile_size, threads=request.threads
            ):
                artifacts = collector.feed(index, tile, instructions_per_access=ipa)
                if writer is not None:
                    columns = {
                        "block": np.array([index], dtype=np.int64),
                        "bbv": artifacts["bbv"],
                        "ldv": artifacts["ldv"],
                        "miss_count": np.array(
                            [int(artifacts["miss_mask"].sum())], dtype=np.int64
                        ),
                    }
                    if store_lines:
                        columns["lines"] = tile
                    writer.append(columns)
    except BaseException:
        if writer is not None:
            writer.abort()
        raise
    if writer is not None:
        writer.close()

    payload = dict(collector.result())
    payload["app"] = request.app
    payload["threads"] = request.threads
    payload["machine"] = machine_name
    # The whole point of the tiled kernels is a bounded RSS; record the
    # high-water mark under the cell's own stage name so the --profile
    # table carries the evidence (worker deltas max-merge it back).
    from repro.exec.stagestore import stage_store_for

    stage_store_for(config).stats.record_rss("trace")
    payload["oracle_checked"] = False
    if store_lines:
        _assert_matches_oracles(request, config, blocks, budgets, payload, levels)
        payload["oracle_checked"] = True
    return payload


def _block_seed(root_seed: int, app: str, block_index: int) -> int:
    """Deterministic, collision-resistant per-block stream seed."""
    import hashlib

    digest = hashlib.sha256(f"{root_seed}/{app}/{block_index}".encode()).digest()
    return int.from_bytes(digest[:8], "little")


def _assert_matches_oracles(
    request, config, blocks, budgets, payload, levels=None
) -> None:
    """Replay the whole stream through the monolithic golden kernels."""
    from repro.instrumentation.streamed import StreamedSignatureCollector
    from repro.mem.cache import CacheSimulator
    from repro.mem.ldv import N_DISTANCE_BINS
    from repro.mem.reuse import reuse_distances, reuse_histogram
    from repro.mem.streams import iter_stream_tiles

    parts = []
    for index, ((_, pattern, _), budget) in enumerate(zip(blocks, budgets, strict=True)):
        if budget <= 0:
            continue
        seed = _block_seed(config.seed, request.app, index)
        parts.extend(
            iter_stream_tiles(
                pattern, budget, seed, budget, threads=request.threads
            )
        )
    stream = np.concatenate(parts)
    ldv = reuse_histogram(reuse_distances(stream), N_DISTANCE_BINS)
    if not np.allclose(ldv, payload["ldv"]):
        raise AssertionError(f"streamed LDV diverged from oracle for {request.app}")
    if levels is not None:
        level_sims = StreamedSignatureCollector(1, levels=levels)._levels
    else:
        level_sims = StreamedSignatureCollector(1)._levels
    substream = stream
    for name, sim in level_sims:
        oracle = CacheSimulator(
            sim.n_sets * sim.associativity * 64, sim.associativity
        ).miss_mask(substream)
        got = payload["levels"][name]
        if got["accesses"] != substream.size or got["misses"] != int(oracle.sum()):
            raise AssertionError(
                f"streamed {name} misses diverged from oracle for {request.app}"
            )
        substream = substream[oracle]


@dataclass(frozen=True)
class TraceTable:
    """The streamed-trace artefact: one row per application."""

    rows: list[dict]
    accesses: int

    def row(self, app: str) -> dict:
        """Lookup one application's payload."""
        for row in self.rows:
            if row["app"] == app:
                return row
        raise KeyError(f"no trace row for {app!r}")

    def render(self) -> str:
        """ASCII table of the streamed exact signatures."""
        out = []
        for row in self.rows:
            l1 = row["levels"]["L1D"]
            l2 = row["levels"]["L2"]
            bbv = row["bbv"]
            hot_share = 100.0 * max(bbv) / max(sum(bbv), 1)
            machine = row.get("machine")
            label = f"{row['app']} @ {machine}" if machine else row["app"]
            out.append(
                (
                    label,
                    f"{row['n_accesses']:,}",
                    row["n_tiles"],
                    f"{row['distinct_lines']:,}",
                    f"{100.0 * l1['misses'] / max(l1['accesses'], 1):.2f}",
                    f"{100.0 * l2['misses'] / max(l2['accesses'], 1):.2f}",
                    f"{hot_share:.1f}",
                    "checked" if row.get("oracle_checked") else "streamed",
                )
            )
        return render_table(
            _HEADERS,
            out,
            title=(
                "Streamed exact traces — tiled out-of-core kernels "
                f"({TRACE_THREADS} threads)"
            ),
        )


def build(results, config: ExperimentConfig) -> TraceTable:
    """Assemble the trace table from executed study cells.

    Default-hierarchy rows first (the original artefact), then one row
    block per extra machine the config names.
    """
    rows = []
    by_key = {}
    for request, payload in results.items():
        if request.kind == "trace":
            by_key[(request.app, request.param("machine"))] = payload
    for machine in (None, *config.machines):
        for app in EVALUATED_APPS:
            payload = by_key.get((app, machine))
            if payload is not None:
                rows.append(payload)
    return TraceTable(rows=rows, accesses=config.trace_accesses)


def run(
    config: ExperimentConfig | None = None,
    scheduler: StudyScheduler | None = None,
) -> TraceTable:
    """Build the streamed-trace table from the scheduled grid."""
    config = config or default_config()
    scheduler = scheduler or StudyScheduler(config)
    return build(scheduler.run(requests(config)), config)
