"""Experiment drivers: one module per paper artefact.

Each driver regenerates one table or figure from the paper's evaluation
(see DESIGN.md §4 for the experiment index) and renders it as an ASCII
table/series.  Drivers *declare* the study cells they need
(:func:`requests`) and assemble artefacts from executed payloads
(:func:`build`); the :class:`~repro.exec.scheduler.StudyScheduler`
deduplicates cells shared between artefacts, executes them on a
serial/threads/processes backend and caches the payloads on disk.
"""

from repro.exec.request import StudyRequest
from repro.exec.scheduler import StudyScheduler
from repro.experiments.config import ExperimentConfig, default_config
from repro.experiments.runner import StudyRunner, StudySummary

__all__ = [
    "ExperimentConfig",
    "default_config",
    "StudyRequest",
    "StudyScheduler",
    "StudyRunner",
    "StudySummary",
]
