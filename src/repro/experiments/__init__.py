"""Experiment drivers: one module per paper artefact.

Each driver regenerates one table or figure from the paper's evaluation
(see DESIGN.md §4 for the experiment index) and renders it as an ASCII
table/series.  Heavy cross-architecture studies are cached on disk by
:mod:`repro.experiments.runner`, so the benchmark suite can share work
across tables and figures.
"""

from repro.experiments.config import ExperimentConfig, default_config
from repro.experiments.runner import StudyRunner, StudySummary

__all__ = ["ExperimentConfig", "default_config", "StudyRunner", "StudySummary"]
