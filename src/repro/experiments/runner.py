"""Cross-architecture study execution with disk caching.

Tables III/IV and every Figure 2 panel derive from the same underlying
sweep: a :class:`~repro.core.crossarch.CrossArchStudy` per (application,
thread count).  :class:`StudyRunner` executes them once, reduces each to
a JSON-serialisable :class:`StudySummary`, and caches the summaries on
disk keyed by the full protocol (seed, runs, repetitions), so re-running
a bench or rendering another table reuses the work.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.core.crossarch import CrossArchStudy
from repro.experiments.config import ExperimentConfig
from repro.hw.pmu import PMU_METRICS
from repro.workloads.registry import create

__all__ = ["ConfigSummary", "StudySummary", "StudyRunner"]

#: Bump when summary contents or the underlying models change shape.
_CACHE_VERSION = 4


@dataclass(frozen=True)
class ConfigSummary:
    """Reduced per-configuration-label result (one Table IV half-row).

    All error values are percentages (Figure 2 / Table IV units).
    """

    label: str
    k: int
    error_mean: dict[str, float]
    error_std: dict[str, float]
    bp_fraction: float
    total_instruction_pct: float
    largest_instruction_pct: float
    speedup: float


@dataclass(frozen=True)
class StudySummary:
    """Everything the table/figure drivers need from one study cell."""

    app: str
    threads: int
    total_barrier_points: int
    configs: dict[str, ConfigSummary]
    failures: dict[str, str]
    selected_counts: list[int]

    def config(self, label: str) -> ConfigSummary:
        """Summary for one configuration label."""
        return self.configs[label]

    def min_selected(self) -> int:
        """Fewest barrier points selected across discovery runs."""
        return min(self.selected_counts)

    def max_selected(self) -> int:
        """Most barrier points selected across discovery runs."""
        return max(self.selected_counts)


def _summarise(study_result) -> StudySummary:
    configs = {}
    for label, cfg in study_result.configs.items():
        report = cfg.report
        selection = cfg.selection
        configs[label] = ConfigSummary(
            label=label,
            k=selection.k,
            error_mean={m: report.error_pct(m) for m in PMU_METRICS},
            error_std={m: report.std_pct(m) for m in PMU_METRICS},
            bp_fraction=selection.bp_fraction,
            total_instruction_pct=100.0 * selection.selected_instruction_fraction,
            largest_instruction_pct=100.0 * selection.largest_instruction_fraction,
            speedup=selection.speedup,
        )
    return StudySummary(
        app=study_result.app_name,
        threads=study_result.threads,
        total_barrier_points=study_result.total_barrier_points,
        configs=configs,
        failures=dict(study_result.failures),
        selected_counts=study_result.selection_sizes(),
    )


class StudyRunner:
    """Executes and caches cross-architecture studies.

    Parameters
    ----------
    config:
        Experiment protocol; part of the cache key.
    """

    def __init__(self, config: ExperimentConfig) -> None:
        self.config = config
        self._memory: dict[tuple[str, int], StudySummary] = {}

    # ------------------------------------------------------------- cache
    def _cache_path(self, app: str, threads: int) -> Path | None:
        if not self.config.cache_dir:
            return None
        c = self.config
        name = (
            f"v{_CACHE_VERSION}_{app}_t{threads}_s{c.seed}"
            f"_d{c.discovery_runs}_r{c.repetitions}.json"
        )
        return Path(c.cache_dir) / name

    def _load(self, path: Path) -> StudySummary | None:
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        configs = {
            label: ConfigSummary(**data) for label, data in payload["configs"].items()
        }
        return StudySummary(
            app=payload["app"],
            threads=payload["threads"],
            total_barrier_points=payload["total_barrier_points"],
            configs=configs,
            failures=payload["failures"],
            selected_counts=payload["selected_counts"],
        )

    def _store(self, path: Path, summary: StudySummary) -> None:
        payload = asdict(summary)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload, indent=1, sort_keys=True))

    # --------------------------------------------------------------- run
    def study(self, app_name: str, threads: int) -> StudySummary:
        """Run (or fetch) the study for one (application, threads) cell."""
        key = (app_name, threads)
        if key in self._memory:
            return self._memory[key]

        path = self._cache_path(app_name, threads)
        if path is not None and path.exists():
            cached = self._load(path)
            if cached is not None:
                self._memory[key] = cached
                return cached

        study = CrossArchStudy(
            create(app_name), threads, self.config.pipeline_config()
        )
        summary = _summarise(study.run())
        self._memory[key] = summary
        if path is not None:
            self._store(path, summary)
        return summary

    def sweep(self, app_names, thread_counts=None) -> list[StudySummary]:
        """Run studies for a cross product of apps and thread counts."""
        threads = thread_counts or self.config.thread_counts
        return [self.study(app, t) for app in app_names for t in threads]
