"""Cross-architecture study cells and the :class:`StudyRunner` facade.

Tables III/IV and every Figure 2 panel derive from the same underlying
sweep: a :class:`~repro.core.crossarch.CrossArchStudy` per (application,
thread count).  Each such cell is declared as a ``"crossarch"``
:class:`~repro.exec.request.StudyRequest` and executed through the
:class:`~repro.exec.scheduler.StudyScheduler`, which deduplicates cells
shared across experiments, runs them on the configured backend and
caches the JSON payloads content-addressed on disk.

:class:`StudyRunner` survives as a thin imperative facade over the
engine for callers (and tests) that want ``runner.study(app, threads)``
without dealing in requests.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Mapping

from repro.exec.request import StudyRequest
from repro.exec.scheduler import StudyScheduler
from repro.experiments.config import ExperimentConfig
from repro.hw.pmu import PMU_METRICS

__all__ = [
    "ConfigSummary",
    "StudySummary",
    "StudyRunner",
    "crossarch_request",
    "crossarch_cell",
    "decode_summaries",
]


@dataclass(frozen=True)
class ConfigSummary:
    """Reduced per-configuration-label result (one Table IV half-row).

    All error values are percentages (Figure 2 / Table IV units).
    """

    label: str
    k: int
    error_mean: dict[str, float]
    error_std: dict[str, float]
    bp_fraction: float
    total_instruction_pct: float
    largest_instruction_pct: float
    speedup: float


@dataclass(frozen=True)
class StudySummary:
    """Everything the table/figure drivers need from one study cell."""

    app: str
    threads: int
    total_barrier_points: int
    configs: dict[str, ConfigSummary]
    failures: dict[str, str]
    selected_counts: list[int]

    def config(self, label: str) -> ConfigSummary:
        """Summary for one configuration label."""
        return self.configs[label]

    def min_selected(self) -> int:
        """Fewest barrier points selected across discovery runs."""
        return min(self.selected_counts)

    def max_selected(self) -> int:
        """Most barrier points selected across discovery runs."""
        return max(self.selected_counts)

    def to_payload(self) -> dict:
        """JSON-shaped payload for the cache store / process boundary."""
        return asdict(self)

    @classmethod
    def from_payload(cls, payload: Mapping) -> "StudySummary":
        """Rebuild a summary from :meth:`to_payload` output."""
        configs = {
            label: ConfigSummary(**data)
            for label, data in payload["configs"].items()
        }
        return cls(
            app=payload["app"],
            threads=payload["threads"],
            total_barrier_points=payload["total_barrier_points"],
            configs=configs,
            failures=dict(payload["failures"]),
            selected_counts=list(payload["selected_counts"]),
        )


def _summarise(study_result) -> StudySummary:
    configs = {}
    for label, cfg in study_result.configs.items():
        report = cfg.report
        selection = cfg.selection
        configs[label] = ConfigSummary(
            label=label,
            k=selection.k,
            error_mean={m: report.error_pct(m) for m in PMU_METRICS},
            error_std={m: report.std_pct(m) for m in PMU_METRICS},
            bp_fraction=selection.bp_fraction,
            total_instruction_pct=100.0 * selection.selected_instruction_fraction,
            largest_instruction_pct=100.0 * selection.largest_instruction_fraction,
            speedup=selection.speedup,
        )
    return StudySummary(
        app=study_result.app_name,
        threads=study_result.threads,
        total_barrier_points=study_result.total_barrier_points,
        configs=configs,
        failures=dict(study_result.failures),
        selected_counts=study_result.selection_sizes(),
    )


# ---------------------------------------------------------------- engine
def crossarch_request(app: str, threads: int) -> StudyRequest:
    """Declare the four-way cross-architecture cell for one (app, threads)."""
    return StudyRequest(kind="crossarch", app=app, threads=threads)


def crossarch_cell(request: StudyRequest, config: ExperimentConfig) -> dict:
    """Executor for ``"crossarch"`` cells (runs in scheduler workers).

    Runs the study as a stage graph against the stage-granular cache, so
    a knob change (e.g. ``maxK``) recomputes only the stages downstream
    of it; the profile/signature payloads come straight from disk.
    """
    from repro.api.study import run_crossarch
    from repro.exec.stagestore import stage_store_for

    result = run_crossarch(
        request.app,
        request.threads,
        config.pipeline_config(),
        store=stage_store_for(config),
    )
    return _summarise(result).to_payload()


def decode_summaries(
    results: Mapping[StudyRequest, dict]
) -> dict[tuple[str, int], StudySummary]:
    """Decode scheduler payloads into (app, threads) → summary."""
    return {
        (request.app, request.threads): StudySummary.from_payload(payload)
        for request, payload in results.items()
        if request.kind == "crossarch"
    }


class StudyRunner:
    """Imperative facade over the study-graph engine.

    Parameters
    ----------
    config:
        Experiment protocol; part of every cache address.
    scheduler:
        Share an existing scheduler (and its memo/stats) instead of
        building a private one.
    """

    def __init__(
        self, config: ExperimentConfig, scheduler: StudyScheduler | None = None
    ) -> None:
        self.config = config
        self.scheduler = scheduler or StudyScheduler(config)
        self._memory: dict[tuple[str, int], StudySummary] = {}

    def study(self, app_name: str, threads: int) -> StudySummary:
        """Run (or fetch) the study for one (application, threads) cell."""
        return self.sweep([app_name], [threads])[0]

    def sweep(self, app_names, thread_counts=None) -> list[StudySummary]:
        """Run studies for a cross product of apps and thread counts.

        The whole product is handed to the scheduler in one batch, so a
        parallel backend overlaps every cell of the sweep.
        """
        threads = thread_counts or self.config.thread_counts
        requests = [
            crossarch_request(app, t) for app in app_names for t in threads
        ]
        results = self.scheduler.run(requests)
        out = []
        for request in requests:
            key = (request.app, request.threads)
            if key not in self._memory:
                self._memory[key] = StudySummary.from_payload(results[request])
            out.append(self._memory[key])
        return out
