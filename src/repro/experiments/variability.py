"""Section V-C — measurement variability and instrumentation overhead.

Two studies the paper runs before trusting any estimate:

* **Variability**: the coefficient of variation of each metric per
  workload and platform.  The paper finds <1% for most apps, <2% for
  HPGMG-FV (except its Intel L2D measurements at 3-9.8%), and the CoMD
  outlier — L1D misses on ARMv8 varying by up to 57% because the miss
  count itself is tiny.
* **Overhead**: the error each metric incurs when collected per barrier
  point instead of once around the ROI.  Fine-grained apps pay heavily:
  LULESH averages ~3%, HPGMG-FV ~7% with cache metrics past 19%.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Mapping

from repro.exec.request import StudyRequest
from repro.exec.scheduler import StudyScheduler
from repro.experiments.config import ExperimentConfig, default_config
from repro.hw.pmu import PMU_METRICS
from repro.util.tables import render_table
from repro.workloads.registry import EVALUATED_APPS

__all__ = ["VariabilityRow", "VariabilityStudy", "requests", "build", "run"]

_STUDY_APPS = EVALUATED_APPS + ("HPGMG-FV",)


@dataclass(frozen=True)
class VariabilityRow:
    """Per (app, platform): mean/max CV and overhead per metric (%)."""

    app: str
    platform: str
    cv_mean: dict[str, float]
    cv_max: dict[str, float]
    overhead: dict[str, float]


@dataclass(frozen=True)
class VariabilityStudy:
    """The full Section V-C data grid."""

    rows: list[VariabilityRow]
    threads: int

    def row(self, app: str, platform: str) -> VariabilityRow:
        """Lookup one (app, platform) row."""
        for row in self.rows:
            if row.app == app and row.platform == platform:
                return row
        raise KeyError(f"no row for {app} on {platform}")

    def render(self) -> str:
        """ASCII rendering of CVs and overheads."""
        cells = []
        for r in self.rows:
            cells.append(
                (
                    r.app,
                    r.platform,
                    " ".join(f"{r.cv_mean[m] * 100:.1f}" for m in PMU_METRICS),
                    " ".join(f"{r.cv_max[m] * 100:.1f}" for m in PMU_METRICS),
                    " ".join(f"{r.overhead[m] * 100:.1f}" for m in PMU_METRICS),
                )
            )
        return render_table(
            (
                "Application",
                "Platform",
                "CV mean (cyc/ins/L1D/L2D %)",
                "CV max (%)",
                "Instrumentation overhead (%)",
            ),
            cells,
            title=f"Section V-C: variability and overhead ({self.threads} threads)",
        )


def requests(config: ExperimentConfig, threads: int = 8) -> list[StudyRequest]:
    """One cell per studied app (both platforms computed inside it)."""
    return [
        StudyRequest(kind="variability", app=app, threads=threads)
        for app in _STUDY_APPS
    ]


def variability_cell(request: StudyRequest, config: ExperimentConfig) -> list[dict]:
    """Executor for ``"variability"`` cells: both platforms of one app."""
    from repro.api.builder import build_pipeline
    from repro.hw.machines import machine_for
    from repro.hw.measure import variability_cv
    from repro.isa.descriptors import ISA
    from repro.workloads.registry import create

    pipeline = build_pipeline(
        create(request.app),
        threads=request.threads,
        config=config.pipeline_config(),
    ).build()
    rows = []
    for isa in (ISA.X86_64, ISA.ARMV8):
        counters = pipeline.counters(isa)
        machine = machine_for(isa)

        # Instruction-weighted mean: the paper's per-workload CV is
        # dominated by the regions that dominate execution, not by
        # near-empty counters of tiny coarse-grid regions.
        cv = variability_cv(counters, machine)  # (n_bp, threads, 4)
        weights = counters.bp_instructions()
        weights = weights / weights.sum()
        cv_mean = (cv.mean(axis=1) * weights[:, None]).sum(axis=0)
        cv_max = cv.max(axis=(0, 1))

        # Overhead: per-BP instrumented totals versus the clean ROI.
        overhead_vec = config.pipeline_config().protocol.overhead.per_read()
        biased = counters.totals() + counters.n_barrier_points * overhead_vec
        clean = counters.totals()
        overhead = (biased - clean).sum(axis=0) / clean.sum(axis=0)

        rows.append(
            asdict(
                VariabilityRow(
                    app=request.app,
                    platform=isa.value,
                    cv_mean={m: float(cv_mean[i]) for i, m in enumerate(PMU_METRICS)},
                    cv_max={m: float(cv_max[i]) for i, m in enumerate(PMU_METRICS)},
                    overhead={
                        m: float(overhead[i]) for i, m in enumerate(PMU_METRICS)
                    },
                )
            )
        )
    return rows


def build(
    results: Mapping[StudyRequest, list[dict]],
    config: ExperimentConfig,
    threads: int = 8,
) -> VariabilityStudy:
    """Assemble the Section V-C grid from executed cells."""
    rows = [
        VariabilityRow(**row)
        for request in requests(config, threads)
        for row in results[request]
    ]
    return VariabilityStudy(rows=rows, threads=threads)


def run(
    config: ExperimentConfig | None = None,
    threads: int = 8,
    scheduler: StudyScheduler | None = None,
) -> VariabilityStudy:
    """Compute per-app, per-platform CV and instrumentation overhead."""
    config = config or default_config()
    scheduler = scheduler or StudyScheduler(config)
    return build(scheduler.run(requests(config, threads)), config, threads)
