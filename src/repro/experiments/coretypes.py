"""Future work F-2: in-order versus out-of-order core types.

Section VIII proposes "evaluating the applicability of the methodology
across different core types, such as in-order versus out-of-order".
This study keeps the paper's x86_64 discovery but validates the barrier
point sets on two ARMv8 parts sharing ISA and cache geometry: the
out-of-order X-Gene and a hypothetical in-order A53-class core
(:data:`repro.hw.machines.ARMV8_IN_ORDER`).

The expectation — borne out here — is that the abstract signatures stay
representative: the in-order core changes *absolute* cycle counts
dramatically (its CPI is several times higher), but within-cluster
behaviour moves together, so the estimation errors stay in the same band
as the out-of-order validation.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Mapping

from repro.exec.request import StudyRequest
from repro.exec.scheduler import StudyScheduler
from repro.experiments.config import ExperimentConfig, default_config
from repro.hw.pmu import PMU_METRICS
from repro.util.tables import render_table

__all__ = ["CoreTypeRow", "CoreTypeStudy", "requests", "build", "run"]

_DEFAULT_APPS = ("AMGMk", "CoMD", "HPCG", "miniFE")


@dataclass(frozen=True)
class CoreTypeRow:
    """Errors of one app on both core types (same selection)."""

    app: str
    k: int
    out_of_order: dict[str, float]
    in_order: dict[str, float]
    cpi_ratio: float


@dataclass(frozen=True)
class CoreTypeStudy:
    """The in-order vs out-of-order validation sweep."""

    threads: int
    rows: list[CoreTypeRow]

    def row(self, app: str) -> CoreTypeRow:
        """Lookup one application's row."""
        for row in self.rows:
            if row.app == app:
                return row
        raise KeyError(f"no core-type row for {app}")

    def render(self) -> str:
        """ASCII rendering of the comparison."""
        cells = [
            (
                r.app,
                r.k,
                " ".join(f"{r.out_of_order[m]:.2f}" for m in PMU_METRICS),
                " ".join(f"{r.in_order[m]:.2f}" for m in PMU_METRICS),
                f"{r.cpi_ratio:.2f}x",
            )
            for r in self.rows
        ]
        return render_table(
            (
                "Application",
                "k",
                "OoO X-Gene err (cyc/ins/L1D/L2D %)",
                "In-order err (%)",
                "CPI ratio (IO/OoO)",
            ),
            cells,
            title=f"Future work: core-type validation ({self.threads} threads, ARMv8)",
        )


def requests(
    config: ExperimentConfig,
    apps: tuple[str, ...] = _DEFAULT_APPS,
    threads: int = 8,
) -> list[StudyRequest]:
    """One core-type validation cell per application."""
    return [
        StudyRequest(kind="coretypes", app=app, threads=threads) for app in apps
    ]


def coretype_cell(request: StudyRequest, config: ExperimentConfig) -> dict:
    """Executor for ``"coretypes"`` cells: one app on both core types."""
    from repro.api.builder import build_pipeline
    from repro.hw.machines import APM_XGENE, ARMV8_IN_ORDER
    from repro.hw.pmu import CYCLES, INSTRUCTIONS
    from repro.isa.descriptors import ISA
    from repro.workloads.registry import create

    pipeline = build_pipeline(
        create(request.app), request.threads, config=config.pipeline_config()
    ).build()
    selection = pipeline.discover()[0]
    ooo = pipeline.evaluate(selection, ISA.ARMV8, machine=APM_XGENE)
    io = pipeline.evaluate(selection, ISA.ARMV8, machine=ARMV8_IN_ORDER)

    ooo_totals = pipeline.counters_on(ISA.ARMV8, APM_XGENE).totals().sum(axis=0)
    io_totals = pipeline.counters_on(ISA.ARMV8, ARMV8_IN_ORDER).totals().sum(axis=0)
    cpi_ratio = (io_totals[CYCLES] / io_totals[INSTRUCTIONS]) / (
        ooo_totals[CYCLES] / ooo_totals[INSTRUCTIONS]
    )
    return asdict(
        CoreTypeRow(
            app=request.app,
            k=int(selection.k),
            out_of_order={m: float(ooo.report.error_pct(m)) for m in PMU_METRICS},
            in_order={m: float(io.report.error_pct(m)) for m in PMU_METRICS},
            cpi_ratio=float(cpi_ratio),
        )
    )


def build(
    results: Mapping[StudyRequest, dict],
    config: ExperimentConfig,
    apps: tuple[str, ...] = _DEFAULT_APPS,
    threads: int = 8,
) -> CoreTypeStudy:
    """Assemble the core-type study from executed cells."""
    rows = [
        CoreTypeRow(**results[request])
        for request in requests(config, apps, threads)
    ]
    return CoreTypeStudy(threads=threads, rows=rows)


def run(
    config: ExperimentConfig | None = None,
    apps: tuple[str, ...] = _DEFAULT_APPS,
    threads: int = 8,
    scheduler: StudyScheduler | None = None,
) -> CoreTypeStudy:
    """Validate x86-discovered sets on both ARMv8 core types."""
    config = config or default_config()
    scheduler = scheduler or StudyScheduler(config)
    return build(scheduler.run(requests(config, apps, threads)), config, apps, threads)
