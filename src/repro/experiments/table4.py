"""Table IV — selection, errors and speed-up for the 8-thread configs.

Per application and vectorisation setting: barrier points selected,
cycle/instruction estimation errors for x86_64 and ARMv8, the largest
and total percentages of instructions selected, and the simulation
speed-up (footnote d: the inverse of the total instruction fraction).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.exec.request import StudyRequest
from repro.exec.scheduler import StudyScheduler
from repro.experiments.config import ExperimentConfig, default_config
from repro.experiments.runner import crossarch_request, decode_summaries
from repro.util.tables import render_table
from repro.workloads.registry import EVALUATED_APPS

__all__ = ["Table4Row", "Table4", "requests", "build", "run", "PAPER_TABLE4"]

#: Table IV reports the widest (8-thread) configuration.
_TABLE4_THREADS = 8

#: Paper values: (BPs, err_cyc_x86, err_cyc_arm, err_ins_x86, err_ins_arm,
#: largest_pct, total_pct, speedup), per (app, vectorised).
PAPER_TABLE4 = {
    ("AMGMk", False): (5, 0.22, 1.58, 0.19, 1.32, 3.17, 3.82, 26.17),
    ("AMGMk", True): (6, 0.32, 2.05, 0.21, 1.03, 1.79, 2.52, 39.68),
    ("CoMD", False): (17, 0.20, 1.20, 0.09, 0.15, 0.52, 2.07, 48.30),
    ("CoMD", True): (12, 0.11, 0.37, 0.08, 0.26, 0.55, 1.42, 70.42),
    ("graph500", False): (10, 1.86, 0.92, 0.79, 1.47, 29.27, 38.98, 2.56),
    ("graph500", True): (9, 0.29, 1.75, 0.70, 1.39, 28.55, 38.26, 2.61),
    ("HPCG", False): (17, 0.45, 1.18, 0.11, 0.29, 0.63, 2.76, 36.23),
    ("HPCG", True): (12, 0.24, 1.59, 0.30, 1.26, 0.62, 1.14, 87.71),
    ("LULESH", False): (10, 8.97, 7.42, 1.06, 16.49, 1.07, 1.70, 58.82),
    ("LULESH", True): (20, 1.52, 10.60, 0.40, 11.99, 0.83, 2.37, 42.19),
    ("MCB", False): (4, 0.51, 0.39, 0.17, 0.13, 10.40, 38.80, 2.57),
    ("MCB", True): (3, 0.60, 0.79, 0.10, 0.13, 10.40, 28.68, 3.48),
    ("miniFE", False): (9, 0.05, 0.36, 0.11, 1.16, 0.43, 0.56, 178.57),
    ("miniFE", True): (13, 0.06, 0.47, 0.08, 1.17, 0.45, 0.59, 169.49),
}

_HEADERS = (
    "Workload",
    "Config",
    "BPs",
    "Total BPs",
    "Err cyc x86/ARM (%)",
    "Err ins x86/ARM (%)",
    "Largest BP (%)",
    "Total (%)",
    "Speedup",
)


@dataclass(frozen=True)
class Table4Row:
    """One Table IV row (one application × vectorisation setting)."""

    app: str
    vectorised: bool
    bps_selected: int
    total_bps: int
    err_cycles_x86: float
    err_cycles_arm: float
    err_instr_x86: float
    err_instr_arm: float
    largest_pct: float
    total_pct: float
    speedup: float

    @property
    def config_name(self) -> str:
        """Configuration pair label as the paper prints it."""
        if self.vectorised:
            return "x86_64-vect / ARMv8-vect"
        return "x86_64 / ARMv8"


@dataclass(frozen=True)
class Table4:
    """Our Table IV."""

    rows: list[Table4Row]

    def render(self) -> str:
        """ASCII rendering with the paper's values appended."""
        cells = []
        for r in self.rows:
            paper = PAPER_TABLE4[(r.app, r.vectorised)]
            cells.append(
                (
                    r.app,
                    "vect" if r.vectorised else "scalar",
                    f"{r.bps_selected}/{r.total_bps}",
                    r.total_bps,
                    f"{r.err_cycles_x86:.2f} / {r.err_cycles_arm:.2f}",
                    f"{r.err_instr_x86:.2f} / {r.err_instr_arm:.2f}",
                    f"{r.largest_pct:.2f} (paper {paper[5]:.2f})",
                    f"{r.total_pct:.2f} (paper {paper[6]:.2f})",
                    f"{r.speedup:.1f}x (paper {paper[7]:.1f}x)",
                )
            )
        return render_table(
            _HEADERS, cells, title="Table IV: 8-thread selection, error and speed-up"
        )


def requests(config: ExperimentConfig) -> list[StudyRequest]:
    """Study cells Table IV needs: the 8-thread cell of every app."""
    return [crossarch_request(app, _TABLE4_THREADS) for app in EVALUATED_APPS]


def build(results: Mapping[StudyRequest, dict], config: ExperimentConfig) -> Table4:
    """Assemble Table IV from executed study cells."""
    summaries = decode_summaries(results)
    rows = []
    for app in EVALUATED_APPS:
        summary = summaries[(app, _TABLE4_THREADS)]
        for vectorised in (False, True):
            suffix = "-vect" if vectorised else ""
            x86 = summary.config(f"x86_64{suffix}")
            arm = summary.config(f"ARMv8{suffix}")
            rows.append(
                Table4Row(
                    app=app,
                    vectorised=vectorised,
                    bps_selected=x86.k,
                    total_bps=summary.total_barrier_points,
                    err_cycles_x86=x86.error_mean["cycles"],
                    err_cycles_arm=arm.error_mean["cycles"],
                    err_instr_x86=x86.error_mean["instructions"],
                    err_instr_arm=arm.error_mean["instructions"],
                    largest_pct=x86.largest_instruction_pct,
                    total_pct=x86.total_instruction_pct,
                    speedup=x86.speedup,
                )
            )
    return Table4(rows=rows)


def run(
    config: ExperimentConfig | None = None,
    scheduler: StudyScheduler | None = None,
) -> Table4:
    """Build Table IV from the 8-thread studies."""
    config = config or default_config()
    scheduler = scheduler or StudyScheduler(config)
    return build(scheduler.run(requests(config)), config)
