"""Future work F-1: barrier-point coalescing study.

Implements and evaluates the paper's Section VIII proposal to "adjust
the size of barrier points so that more applications benefit from the
BarrierPoint methodology".  For a fine-grained application (LULESH by
default) it sweeps the minimum super-region size and reports the
resulting estimation errors: as regions grow, per-read instrumentation
overhead amortises away and PMU quantisation noise stops dominating, so
the errors fall toward the well-behaved apps' band — at the cost of a
coarser (less parallel-simulatable) partition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.api.builder import StagePipeline, build_pipeline
from repro.clustering.simpoint import run_simpoint
from repro.core.coalesce import aggregate_observation, aggregate_values, coalesce_groups
from repro.core.reconstruction import reconstruct_totals
from repro.core.selection import select_barrier_points
from repro.core.signatures import build_signatures
from repro.core.validation import EstimationReport, validate_estimate
from repro.exec.request import StudyRequest
from repro.exec.scheduler import StudyScheduler
from repro.experiments.config import ExperimentConfig, default_config
from repro.hw.machines import machine_for
from repro.hw.measure import measure_barrier_point_means, measure_roi_totals
from repro.hw.perf import TrueCounters
from repro.instrumentation.collector import BarrierPointCollector
from repro.isa.descriptors import ISA
from repro.util.tables import render_table
from repro.workloads.registry import create

__all__ = ["CoalescePoint", "CoalesceStudy", "requests", "build", "run"]

_DEFAULT_THRESHOLDS = (0.0, 1e6, 5e6, 2e7)


@dataclass(frozen=True)
class CoalescePoint:
    """Errors at one minimum super-region size."""

    min_instructions: float
    n_regions: int
    k: int
    errors: dict[str, float]


@dataclass(frozen=True)
class CoalesceStudy:
    """The coalescing sweep for one application/platform."""

    app: str
    threads: int
    isa: str
    points: list[CoalescePoint]

    def render(self) -> str:
        """ASCII rendering of the sweep."""
        from repro.hw.pmu import PMU_METRICS

        rows = [
            (
                f"{p.min_instructions:.0e}" if p.min_instructions else "off",
                p.n_regions,
                p.k,
                *(f"{p.errors[m]:.2f}" for m in PMU_METRICS),
            )
            for p in self.points
        ]
        return render_table(
            ("Min region size", "Regions", "k", "cyc %", "ins %", "L1D %", "L2D %"),
            rows,
            title=(
                f"Future work: coalescing {self.app} barrier points "
                f"({self.threads} threads, {self.isa})"
            ),
        )


def _evaluate_grouped(
    pipeline: StagePipeline,
    groups: np.ndarray,
    isa: ISA,
) -> tuple[EstimationReport, int]:
    """Discovery + evaluation on the coalesced partition."""
    machine = machine_for(isa)
    x86_counters = pipeline.counters(ISA.X86_64)
    collector = BarrierPointCollector(
        pipeline.context.tree.child("coalesce-discovery", pipeline.app.name, pipeline.threads)
    )
    observation = aggregate_observation(
        collector.collect(pipeline.trace(ISA.X86_64), x86_counters, 0), groups
    )
    signatures = build_signatures(observation, pipeline.config.bbv_weight)
    gen = pipeline.context.tree.generator(
        "coalesce-simpoint", pipeline.app.name, pipeline.threads
    )
    choice = run_simpoint(
        signatures.combined, signatures.weights, gen, pipeline.config.simpoint
    )
    selection = select_barrier_points(choice, signatures.weights)

    # Target-side measurement: true counters per *group*, one read each.
    target = pipeline.counters(isa)
    grouped_values = aggregate_values(target.values, groups)
    grouped_counters = TrueCounters(
        values=grouped_values, trace=target.trace, machine_name=machine.name
    )
    rng = pipeline.context.tree.child(
        "coalesce-measure", pipeline.app.name, pipeline.threads, isa.value
    )
    measured = measure_barrier_point_means(
        grouped_counters, machine, pipeline.config.protocol, rng
    )
    reference = measure_roi_totals(
        grouped_counters, machine, pipeline.config.protocol, rng
    )
    estimate = reconstruct_totals(selection, measured)
    return validate_estimate(estimate, reference), selection.k


def requests(
    config: ExperimentConfig,
    app_name: str = "LULESH",
    threads: int = 8,
    isa: ISA = ISA.X86_64,
    thresholds: tuple[float, ...] = _DEFAULT_THRESHOLDS,
) -> list[StudyRequest]:
    """One cell per super-region size threshold (the sweep's x-axis)."""
    return [
        StudyRequest(
            kind="coalesce",
            app=app_name,
            threads=threads,
            params=(("isa", isa.value), ("threshold", float(threshold))),
        )
        for threshold in thresholds
    ]


def coalesce_cell(request: StudyRequest, config: ExperimentConfig) -> dict:
    """Executor for ``"coalesce"`` cells: one threshold of the sweep.

    Each cell rebuilds its pipeline, but every random stream is
    path-addressed, so the per-threshold numbers are identical to the
    old shared-pipeline loop.
    """
    from repro.hw.pmu import PMU_METRICS

    isa = ISA(request.param("isa"))
    threshold = float(request.param("threshold"))
    pipeline = build_pipeline(
        create(request.app), request.threads, config=config.pipeline_config()
    ).build()
    weights = pipeline.counters(ISA.X86_64).bp_instructions()
    groups = coalesce_groups(weights, threshold)
    report, k = _evaluate_grouped(pipeline, groups, isa)
    return {
        "min_instructions": threshold,
        "n_regions": int(groups.max()) + 1,
        "k": int(k),
        "errors": {m: float(report.error_pct(m)) for m in PMU_METRICS},
    }


def build(
    results: Mapping[StudyRequest, dict],
    config: ExperimentConfig,
    app_name: str = "LULESH",
    threads: int = 8,
    isa: ISA = ISA.X86_64,
    thresholds: tuple[float, ...] = _DEFAULT_THRESHOLDS,
) -> CoalesceStudy:
    """Assemble the sweep from executed cells (threshold order kept)."""
    points = [
        CoalescePoint(**results[request])
        for request in requests(config, app_name, threads, isa, thresholds)
    ]
    return CoalesceStudy(app=app_name, threads=threads, isa=isa.value, points=points)


def run(
    config: ExperimentConfig | None = None,
    app_name: str = "LULESH",
    threads: int = 8,
    isa: ISA = ISA.X86_64,
    thresholds: tuple[float, ...] = _DEFAULT_THRESHOLDS,
    scheduler: StudyScheduler | None = None,
) -> CoalesceStudy:
    """Sweep the minimum super-region size on a fine-grained app."""
    config = config or default_config()
    scheduler = scheduler or StudyScheduler(config)
    results = scheduler.run(requests(config, app_name, threads, isa, thresholds))
    return build(results, config, app_name, threads, isa, thresholds)
