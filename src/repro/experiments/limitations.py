"""Section V-B — methodology applicability per application.

Three failure groups the paper documents:

* **Single parallel region** (RSBench, XSBench, PathFinder): the
  analysis finds exactly one barrier point; it is trivially
  representative but offers no simulation-time gain.
* **Architecture-dependent iteration counts** (HPGMG-FV): x86_64 and
  ARMv8 execute different numbers of parallel regions, so the x86-based
  selection cannot be validated on ARMv8 at all.
* **Many tiny regions** (HPGMG-FV, LULESH): instrumentation overhead and
  PMU noise dominate, degrading the estimates (quantified by the
  Section V-C study and visible in Figure 2g).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Mapping

from repro.exec.request import StudyRequest
from repro.exec.scheduler import StudyScheduler
from repro.experiments.config import ExperimentConfig, default_config
from repro.util.tables import render_table
from repro.workloads.registry import SINGLE_REGION_APPS

__all__ = ["LimitationRow", "Limitations", "requests", "build", "run"]


@dataclass(frozen=True)
class LimitationRow:
    """Applicability verdict for one application."""

    app: str
    total_bps: int
    selected: int
    offers_gain: bool
    cross_arch_ok: bool
    note: str


@dataclass(frozen=True)
class Limitations:
    """The Section V-B applicability study."""

    rows: list[LimitationRow]

    def row(self, app: str) -> LimitationRow:
        """Lookup one application's verdict."""
        for row in self.rows:
            if row.app == app:
                return row
        raise KeyError(f"no limitation row for {app}")

    def render(self) -> str:
        """ASCII rendering of the applicability table."""
        cells = [
            (
                r.app,
                r.total_bps,
                r.selected,
                "yes" if r.offers_gain else "NO",
                "yes" if r.cross_arch_ok else "NO",
                r.note,
            )
            for r in self.rows
        ]
        return render_table(
            ("Application", "Total BPs", "Selected", "Gain?", "Cross-arch?", "Note"),
            cells,
            title="Section V-B: methodology applicability",
        )


def requests(config: ExperimentConfig, threads: int = 8) -> list[StudyRequest]:
    """One applicability cell per limitation-group app."""
    return [
        StudyRequest(kind="limitations", app=app, threads=threads)
        for app in SINGLE_REGION_APPS + ("HPGMG-FV",)
    ]


def limitation_cell(request: StudyRequest, config: ExperimentConfig) -> dict:
    """Executor for ``"limitations"`` cells: one app's verdict."""
    from repro.core.errors import CrossArchitectureMismatch
    from repro.api.builder import build_pipeline
    from repro.isa.descriptors import ISA
    from repro.workloads.registry import create

    pipeline = build_pipeline(
        create(request.app), request.threads, config=config.pipeline_config()
    ).build()
    selection = pipeline.discover()[0]

    if request.app in SINGLE_REGION_APPS:
        cross_ok = True
        note = "embarrassingly parallel: full core loop must run"
    else:
        try:
            pipeline.evaluate(selection, ISA.ARMV8)
            cross_ok, note = True, "unexpectedly matched"
        except CrossArchitectureMismatch as exc:
            cross_ok = False
            note = (
                f"convergence differs: {exc.source_count} BPs on x86_64, "
                f"{exc.target_count} on ARMv8"
            )
    return asdict(
        LimitationRow(
            app=request.app,
            total_bps=int(selection.n_barrier_points),
            selected=int(selection.k),
            offers_gain=bool(selection.offers_gain),
            cross_arch_ok=cross_ok,
            note=note,
        )
    )


def build(
    results: Mapping[StudyRequest, dict],
    config: ExperimentConfig,
    threads: int = 8,
) -> Limitations:
    """Assemble the applicability table from executed cells."""
    rows = [
        LimitationRow(**results[request]) for request in requests(config, threads)
    ]
    return Limitations(rows=rows)


def run(
    config: ExperimentConfig | None = None,
    threads: int = 8,
    scheduler: StudyScheduler | None = None,
) -> Limitations:
    """Check the limitation groups explicitly."""
    config = config or default_config()
    scheduler = scheduler or StudyScheduler(config)
    return build(scheduler.run(requests(config, threads)), config, threads)
