"""Section V-B — methodology applicability per application.

Three failure groups the paper documents:

* **Single parallel region** (RSBench, XSBench, PathFinder): the
  analysis finds exactly one barrier point; it is trivially
  representative but offers no simulation-time gain.
* **Architecture-dependent iteration counts** (HPGMG-FV): x86_64 and
  ARMv8 execute different numbers of parallel regions, so the x86-based
  selection cannot be validated on ARMv8 at all.
* **Many tiny regions** (HPGMG-FV, LULESH): instrumentation overhead and
  PMU noise dominate, degrading the estimates (quantified by the
  Section V-C study and visible in Figure 2g).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import CrossArchitectureMismatch
from repro.core.pipeline import BarrierPointPipeline
from repro.experiments.config import ExperimentConfig, default_config
from repro.isa.descriptors import ISA
from repro.util.tables import render_table
from repro.workloads.registry import SINGLE_REGION_APPS, create

__all__ = ["LimitationRow", "Limitations", "run"]


@dataclass(frozen=True)
class LimitationRow:
    """Applicability verdict for one application."""

    app: str
    total_bps: int
    selected: int
    offers_gain: bool
    cross_arch_ok: bool
    note: str


@dataclass(frozen=True)
class Limitations:
    """The Section V-B applicability study."""

    rows: list[LimitationRow]

    def row(self, app: str) -> LimitationRow:
        """Lookup one application's verdict."""
        for row in self.rows:
            if row.app == app:
                return row
        raise KeyError(f"no limitation row for {app}")

    def render(self) -> str:
        """ASCII rendering of the applicability table."""
        cells = [
            (
                r.app,
                r.total_bps,
                r.selected,
                "yes" if r.offers_gain else "NO",
                "yes" if r.cross_arch_ok else "NO",
                r.note,
            )
            for r in self.rows
        ]
        return render_table(
            ("Application", "Total BPs", "Selected", "Gain?", "Cross-arch?", "Note"),
            cells,
            title="Section V-B: methodology applicability",
        )


def run(config: ExperimentConfig | None = None, threads: int = 8) -> Limitations:
    """Check the limitation groups explicitly."""
    config = config or default_config()
    pipeline_config = config.pipeline_config()
    rows = []

    for app_name in SINGLE_REGION_APPS:
        pipeline = BarrierPointPipeline(
            create(app_name), threads, config=pipeline_config
        )
        selection = pipeline.discover()[0]
        rows.append(
            LimitationRow(
                app=app_name,
                total_bps=selection.n_barrier_points,
                selected=selection.k,
                offers_gain=selection.offers_gain,
                cross_arch_ok=True,
                note="embarrassingly parallel: full core loop must run",
            )
        )

    pipeline = BarrierPointPipeline(create("HPGMG-FV"), threads, config=pipeline_config)
    selection = pipeline.discover()[0]
    try:
        pipeline.evaluate(selection, ISA.ARMV8)
        cross_ok, note = True, "unexpectedly matched"
    except CrossArchitectureMismatch as exc:
        cross_ok = False
        note = (
            f"convergence differs: {exc.source_count} BPs on x86_64, "
            f"{exc.target_count} on ARMv8"
        )
    rows.append(
        LimitationRow(
            app="HPGMG-FV",
            total_bps=selection.n_barrier_points,
            selected=selection.k,
            offers_gain=selection.offers_gain,
            cross_arch_ok=cross_ok,
            note=note,
        )
    )
    return Limitations(rows=rows)
