"""Table I — applications deployed and their descriptions."""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.tables import render_table
from repro.workloads.registry import TABLE1_ORDER, create

__all__ = ["Table1", "run"]

_HEADERS = ("Application", "Description", "Input")


@dataclass(frozen=True)
class Table1:
    """Rendered Table I."""

    rows: list[tuple[str, str, str]]

    def render(self) -> str:
        """ASCII rendering of the table."""
        return render_table(_HEADERS, self.rows, title="Table I: applications deployed")


def run(config=None) -> Table1:
    """Build Table I from the workload registry."""
    rows = []
    for name in TABLE1_ORDER:
        app = create(name)
        rows.append((app.name, app.description, f"Input: {app.input_args}"))
    return Table1(rows=rows)
