"""Table III — total barrier points and min/max selected per application.

"Total number of barrier points, as well as the minimum and maximum
number selected, per application, across all configurations and barrier
point discovery runs" — i.e. across thread counts, both vectorisation
settings, and the 10 discovery runs of each.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.exec.request import StudyRequest
from repro.exec.scheduler import StudyScheduler
from repro.experiments.config import ExperimentConfig, default_config
from repro.experiments.runner import crossarch_request, decode_summaries
from repro.util.tables import render_table
from repro.workloads.registry import EVALUATED_APPS

__all__ = ["Table3", "requests", "build", "run", "PAPER_TABLE3"]

_HEADERS = ("Application", "Total", "Min", "Max")

#: The paper's Table III values, for side-by-side comparison.
PAPER_TABLE3 = {
    "AMGMk": (1000, 3, 12),
    "CoMD": (810, 7, 18),
    "graph500": (197, 8, 20),
    "HPCG": (803, 12, 19),
    "LULESH": (9840, 8, 20),
    "MCB": (10, 3, 4),
    "miniFE": (1208, 3, 19),
}


@dataclass(frozen=True)
class Table3:
    """Our Table III, with the paper's numbers attached."""

    rows: list[tuple[str, int, int, int]]

    def render(self) -> str:
        """ASCII rendering, paper values alongside measured ones."""
        merged = []
        for app, total, lo, hi in self.rows:
            p_total, p_lo, p_hi = PAPER_TABLE3[app]
            merged.append(
                (app, total, lo, hi, f"{p_total} / {p_lo}-{p_hi}")
            )
        return render_table(
            ("Application", "Total", "Min", "Max", "Paper (total / min-max)"),
            merged,
            title="Table III: barrier points per application",
        )


def requests(config: ExperimentConfig) -> list[StudyRequest]:
    """Study cells Table III needs: every evaluated app × thread count."""
    return [
        crossarch_request(app, threads)
        for app in EVALUATED_APPS
        for threads in config.thread_counts
    ]


def build(results: Mapping[StudyRequest, dict], config: ExperimentConfig) -> Table3:
    """Assemble Table III from executed study cells."""
    summaries = decode_summaries(results)
    rows = []
    for app in EVALUATED_APPS:
        counts: list[int] = []
        total = 0
        for threads in config.thread_counts:
            summary = summaries[(app, threads)]
            counts.extend(summary.selected_counts)
            total = max(total, summary.total_barrier_points)
        rows.append((app, total, min(counts), max(counts)))
    return Table3(rows=rows)


def run(
    config: ExperimentConfig | None = None,
    scheduler: StudyScheduler | None = None,
) -> Table3:
    """Sweep all evaluated apps × thread counts and count selections."""
    config = config or default_config()
    scheduler = scheduler or StudyScheduler(config)
    return build(scheduler.run(requests(config)), config)
