"""Static OpenMP loop scheduling.

All eleven proxy applications use (or default to) ``schedule(static)``,
so a region's iteration space divides into near-equal contiguous chunks.
Two effects make the division uneven in practice, and both matter for the
barrier-spin model:

* the *remainder*: ``N mod t`` threads receive one extra iteration;
* *data-dependent imbalance*: equal iteration counts are not equal work
  (graph500's frontier expansions are the extreme case).  We model this
  as a multiplicative per-thread jitter that is part of the program's
  structural randomness (it is the same for every binary of a given run,
  because it is a property of the input data, not of the ISA).
"""

from __future__ import annotations

import numpy as np

__all__ = ["split_iterations", "thread_shares"]


def split_iterations(total: int, threads: int) -> np.ndarray:
    """Split ``total`` iterations over ``threads`` as ``schedule(static)`` does.

    Returns an integer array of per-thread iteration counts; the first
    ``total % threads`` threads receive the extra iteration.
    """
    if threads < 1:
        raise ValueError(f"threads must be >= 1, got {threads}")
    if total < 0:
        raise ValueError(f"total must be non-negative, got {total}")
    base, remainder = divmod(int(total), threads)
    counts = np.full(threads, base, dtype=np.int64)
    counts[:remainder] += 1
    return counts

def thread_shares(
    n_instances: int,
    threads: int,
    imbalance_cv: float,
    gen: np.random.Generator,
) -> np.ndarray:
    """Fractional work shares per (instance, thread), rows summing to 1.

    Parameters
    ----------
    n_instances:
        Number of dynamic region instances to draw shares for.
    threads:
        Team width.
    imbalance_cv:
        Coefficient of variation of the per-thread work jitter.  Zero
        yields exact ``1/threads`` shares.
    gen:
        Structural random generator (input-data randomness).

    Returns
    -------
    numpy.ndarray
        ``(n_instances, threads)`` array of non-negative shares, each row
        summing to 1, so scaling by a region's total work conserves it.
    """
    if threads < 1:
        raise ValueError(f"threads must be >= 1, got {threads}")
    if imbalance_cv < 0:
        raise ValueError(f"imbalance_cv must be non-negative, got {imbalance_cv}")
    shares = np.full((n_instances, threads), 1.0 / threads)
    if imbalance_cv > 0 and threads > 1:
        sigma = np.sqrt(np.log1p(imbalance_cv**2))
        jitter = gen.lognormal(mean=-0.5 * sigma**2, sigma=sigma, size=shares.shape)
        shares = shares * jitter
        shares /= shares.sum(axis=1, keepdims=True)
    return shares
