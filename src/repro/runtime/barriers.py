"""Barrier synchronisation model.

OpenMP's default wait policy spins for a bounded window and then parks
the thread on a futex (GOMP's ``OMP_WAIT_POLICY`` / spin-count
behaviour).  While spinning, a thread's PMU keeps counting: it accrues
cycles (wall time) and a trickle of pause-loop instructions.  Once the
thread sleeps, it is descheduled and its *per-thread* counters stop —
PAPI reads user-mode counts, so a parked thread accumulates nothing.

The model therefore charges each early-arriving thread
``min(wait, SPIN_WINDOW_CYCLES)`` cycles and ``SPIN_IPC`` instructions
per counted spin cycle.  For coarse, imbalanced regions (graph500's BFS
levels) the window is negligible against the region size; for LULESH's
~100k-instruction regions it is a visible fraction — one more reason
tiny barrier points estimate poorly.
"""

from __future__ import annotations

import numpy as np

__all__ = ["SPIN_IPC", "SPIN_WINDOW_CYCLES", "barrier_spin"]

#: Instructions retired per cycle while spinning at a barrier.  Pause
#: loops are deliberately low-IPC (the x86 ``pause`` and ARM ``yield``
#: hints throttle the pipeline).
SPIN_IPC = 0.22

#: Cycles a thread busy-waits before parking on a futex (GOMP spins a
#: few hundred thousand loop iterations by default).
SPIN_WINDOW_CYCLES = 150_000.0


def barrier_spin(busy_cycles: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Per-thread counted spin cycles and instructions at a barrier.

    Parameters
    ----------
    busy_cycles:
        ``(..., threads)`` cycles each thread spent computing inside the
        region; the last axis is the thread axis.

    Returns
    -------
    (spin_cycles, spin_instructions)
        Arrays of the same shape: each thread spins until the slowest
        thread of its region instance arrives, but only the bounded spin
        window lands in its counters.
    """
    busy = np.asarray(busy_cycles, dtype=float)
    slowest = busy.max(axis=-1, keepdims=True)
    wait = slowest - busy
    counted = np.minimum(wait, SPIN_WINDOW_CYCLES)
    return counted, counted * SPIN_IPC
