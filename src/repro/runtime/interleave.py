"""Thread-interleaving variability.

Section V-A of the paper runs barrier-point discovery **10 times per
configuration** because "different thread interleavings ... obtain in
each case different SV characteristics, which can lead to the selection
of different barrier points".  We model the effect of an interleaving on
the collected signatures as a multiplicative jitter whose magnitude

* grows with the thread count (more interleavings possible), and
* grows as barrier points shrink (fewer events to average over — the
  mechanism behind LULESH's unstable selections).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "BASE_SIGMA",
    "THREAD_SIGMA_SLOPE",
    "REFERENCE_INSTRUCTIONS",
    "signature_jitter_sigma",
]

#: Relative jitter of signature entries for a 1-thread run of a
#: reference-size (1e6-instruction) barrier point.
BASE_SIGMA = 0.04

#: Additional relative jitter per extra thread.
THREAD_SIGMA_SLOPE = 0.06

#: Barrier-point size at which the base jitter applies; smaller regions
#: see jitter growing like 1/sqrt(instructions).
REFERENCE_INSTRUCTIONS = 1.0e6

#: Upper clamp so degenerate, near-empty regions stay finite.
_MAX_SIGMA = 0.35


def signature_jitter_sigma(bp_instructions: np.ndarray, threads: int) -> np.ndarray:
    """Per-barrier-point signature jitter (lognormal sigma).

    Parameters
    ----------
    bp_instructions:
        ``(n_bp,)`` abstract instruction counts of each barrier point
        (summed over threads).
    threads:
        Team width of the run being instrumented.

    Returns
    -------
    numpy.ndarray
        ``(n_bp,)`` sigma of the multiplicative jitter applied to that
        barrier point's BBV/LDV entries in one discovery run.
    """
    if threads < 1:
        raise ValueError(f"threads must be >= 1, got {threads}")
    instr = np.maximum(np.asarray(bp_instructions, dtype=float), 1.0)
    size_factor = np.sqrt(REFERENCE_INSTRUCTIONS / instr)
    thread_factor = 1.0 + THREAD_SIGMA_SLOPE * (threads - 1)
    return np.clip(BASE_SIGMA * size_factor * thread_factor, 0.0, _MAX_SIGMA)
