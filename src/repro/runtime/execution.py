"""Driving a program through the simulated OpenMP runtime.

:func:`execute_program` turns the static :class:`~repro.ir.program.Program`
into an :class:`~repro.ir.trace.ExecutionTrace` for a given team width and
binary.  All randomness drawn here is **structural** — it models the
input data (per-instance work variation, thread imbalance), so the same
``RngTree`` node must be passed for every binary variant of a run: the
paper's methodology relies on the x86_64 and ARMv8 executions having the
same barrier-point sequence and per-region work.
"""

from __future__ import annotations

import numpy as np

from repro.ir.program import Program
from repro.ir.trace import ExecutionTrace, TemplateTrace
from repro.isa.descriptors import BinaryConfig
from repro.runtime.scheduler import thread_shares
from repro.util.rng import RngTree

__all__ = ["execute_program"]

#: Per-thread imbalance CV as a fraction of the template's instance CV,
#: plus a small floor from runtime/OS scheduling noise.
_IMBALANCE_SHARE = 0.15
_IMBALANCE_FLOOR = 0.004


def _instance_factors(
    n_instances: int, cv: float, gen: np.random.Generator
) -> np.ndarray:
    """Lognormal per-instance work factors with unit mean."""
    if cv <= 0 or n_instances == 0:
        return np.ones(n_instances)
    sigma = np.sqrt(np.log1p(cv**2))
    return gen.lognormal(mean=-0.5 * sigma**2, sigma=sigma, size=n_instances)


def execute_program(
    program: Program,
    binary: BinaryConfig,
    threads: int,
    rng: RngTree,
) -> ExecutionTrace:
    """Execute a program and return its dynamic trace.

    Parameters
    ----------
    program:
        Static program (templates + barrier-point sequence).
    binary:
        Binary variant being executed.  It is recorded on the trace and
        steers downstream lowering, but does **not** influence the
        structural randomness — traces of different binaries from the
        same ``rng`` node share their barrier-point sequence and work.
    threads:
        OpenMP team width (the paper uses 1, 2, 4, 8).
    rng:
        Structural randomness node, typically
        ``tree.child("structure", app, threads)``.
    """
    if threads < 1:
        raise ValueError(f"threads must be >= 1, got {threads}")

    counts = program.instance_counts()
    template_traces: list[TemplateTrace] = []

    for template, n_inst in zip(program.templates, counts, strict=True):
        n_inst = int(n_inst)
        n_blocks = template.n_blocks
        if n_inst == 0:
            template_traces.append(
                TemplateTrace(
                    iters=np.zeros((0, n_blocks, threads)),
                    footprint_scale=np.zeros(0),
                    hot_scale=np.zeros(0),
                    phase=np.zeros(0),
                )
            )
            continue

        phase = (
            np.linspace(0.0, 1.0, n_inst) if n_inst > 1 else np.zeros(1, dtype=float)
        )
        gen = rng.generator("template", template.name)
        inst_factor = _instance_factors(n_inst, template.instance_cv, gen)
        drift_factor = template.drift.iter_factor(phase)

        base = np.asarray(template.iterations, dtype=float)  # (n_blocks,)
        totals = base[None, :] * (inst_factor * drift_factor)[:, None]

        if template.parallel and threads > 1:
            imbalance = template.instance_cv * _IMBALANCE_SHARE + _IMBALANCE_FLOOR
            shares = thread_shares(n_inst, threads, imbalance, gen)
            iters = totals[:, :, None] * shares[:, None, :]
        elif template.parallel:
            iters = totals[:, :, None]
        else:
            iters = np.zeros((n_inst, n_blocks, threads))
            iters[:, :, 0] = totals

        template_traces.append(
            TemplateTrace(
                iters=iters,
                footprint_scale=template.drift.footprint_factor(phase),
                hot_scale=template.drift.hot_factor(phase),
                phase=phase,
            )
        )

    return ExecutionTrace(
        program=program,
        binary=binary,
        threads=threads,
        template_traces=tuple(template_traces),
        bp_template=program.sequence.copy(),
        bp_instance=program.instance_index(),
    )
