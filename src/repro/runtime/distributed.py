"""Driving an SPMD job of R ranks through the simulated runtime.

:func:`execute_distributed` runs one program once per rank — each rank
with its own structural randomness (per-instance work, thread
imbalance), exactly as R processes fed R sub-domains of the same input
would behave — and **coalesces** the per-rank traces into a single
:class:`DistributedTrace` whose thread axis is rank-major: hardware
context ``r * threads + t`` is thread ``t`` of rank ``r``.

Domain decomposition follows the strong-scaling SPMD contract:

* **parallel** regions split the work — each rank executes ``1/R`` of
  every instance's iterations (and owns ``1/R`` of the footprint, which
  its trace carries through a scaled drift multiplier), so the whole
  job does the same total work at every rank count;
* **serial** regions replicate — every rank's master thread runs them
  in full (the Amdahl term of rank scaling), exactly as redundant
  setup/reduction code behaves in real MPI applications.

The coalesced form is what makes the whole downstream stack
(performance model, PMU measurement, reconstruction, validation)
distributed-aware without per-module surgery: a distributed trace *is*
an :class:`~repro.ir.trace.ExecutionTrace` with ``ranks × threads``
columns, plus the communication schedule and the per-rank sub-traces
that BBV/LDV collection slices per rank.

Alignment invariant: every rank executes the same barrier-point
sequence (SPMD), and collectives in the schedule synchronise all ranks
at the same positions — so region boundaries are identical on every
rank.  :func:`execute_distributed` asserts the sequence alignment
rather than assuming it, so an architecture-dependent workload
(HPGMG-FV style) diverging per rank fails loudly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ir.comm import CommSchedule
from repro.ir.program import Program
from repro.ir.trace import ExecutionTrace, TemplateTrace
from repro.isa.descriptors import BinaryConfig
from repro.runtime.execution import execute_program
from repro.util.rng import RngTree

__all__ = ["DistributedTrace", "execute_distributed"]


@dataclass(frozen=True)
class DistributedTrace(ExecutionTrace):
    """A coalesced execution of R ranks × T threads.

    The inherited ``threads`` is the total context count ``R × T``;
    the inherited per-template ``iters`` tensors carry the rank-major
    concatenation of every rank's thread columns.

    Attributes
    ----------
    ranks:
        Number of MPI-style ranks.
    rank_traces:
        The per-rank shared-memory traces (each ``threads_per_rank``
        wide), kept for per-rank BBV/LDV collection.
    comm:
        The job's communication schedule.
    """

    ranks: int = 1
    rank_traces: tuple[ExecutionTrace, ...] = ()
    comm: CommSchedule = CommSchedule(n_ranks=1)

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.ranks < 1:
            raise ValueError(f"ranks must be >= 1, got {self.ranks}")
        if self.threads % self.ranks != 0:
            raise ValueError(
                f"{self.threads} contexts do not split over {self.ranks} ranks"
            )
        if len(self.rank_traces) != self.ranks:
            raise ValueError(
                f"{len(self.rank_traces)} rank traces for {self.ranks} ranks"
            )

    @property
    def threads_per_rank(self) -> int:
        """Team width of one rank (the OpenMP half of the hybrid)."""
        return self.threads // self.ranks

    def rank_columns(self, rank: int) -> slice:
        """Thread-axis slice of one rank's contexts (rank-major layout)."""
        if not 0 <= rank < self.ranks:
            raise ValueError(f"rank {rank} outside 0..{self.ranks - 1}")
        width = self.threads_per_rank
        return slice(rank * width, (rank + 1) * width)

    def rank_trace(self, rank: int) -> ExecutionTrace:
        """The shared-memory trace of one rank."""
        if not 0 <= rank < self.ranks:
            raise ValueError(f"rank {rank} outside 0..{self.ranks - 1}")
        return self.rank_traces[rank]

    def region_boundaries(self, rank: int) -> tuple[int, ...]:
        """Collective-induced region boundaries as seen by one rank.

        Collectives are global barriers, so this tuple is identical for
        every rank — the invariant the rank-aware barrier-point
        machinery (and its tests) relies on.
        """
        if not 0 <= rank < self.ranks:
            raise ValueError(f"rank {rank} outside 0..{self.ranks - 1}")
        return self.comm.collective_positions()


def execute_distributed(
    program: Program,
    binary: BinaryConfig,
    ranks: int,
    threads: int,
    rng: RngTree,
    comm: CommSchedule | None = None,
) -> DistributedTrace:
    """Execute an SPMD job and return the coalesced distributed trace.

    Parameters
    ----------
    program:
        The per-rank program (every rank runs the same one — SPMD).
    binary:
        Binary variant every rank executes.
    ranks / threads:
        Job shape: R processes × T OpenMP threads each.
    rng:
        Structural randomness node; rank ``r`` draws from
        ``rng.child("rank", r)``, so ranks see independent per-instance
        work and imbalance while sharing the program structure.
    comm:
        Communication schedule; defaults to no communication (R
        independent processes).  Positions are validated against the
        program's barrier-point count.
    """
    if ranks < 1:
        raise ValueError(f"ranks must be >= 1, got {ranks}")
    comm = comm if comm is not None else CommSchedule(n_ranks=ranks)
    if comm.n_ranks != ranks:
        raise ValueError(
            f"schedule built for {comm.n_ranks} ranks, job has {ranks}"
        )
    comm.validate_positions(program.n_barrier_points)

    raw_traces = tuple(
        execute_program(program, binary, threads, rng.child("rank", rank))
        for rank in range(ranks)
    )
    first = raw_traces[0]
    for rank, trace in enumerate(raw_traces[1:], start=1):
        if not np.array_equal(trace.bp_template, first.bp_template):
            raise ValueError(
                f"rank {rank} executed a different barrier-point sequence "
                f"than rank 0 — SPMD alignment broken"
            )

    # Domain decomposition: rank r of a parallel region executes 1/R of
    # the iterations and owns 1/R of the footprint (its trace's drift
    # multiplier carries the share, so per-rank LDV collection sees the
    # sub-domain).  Serial regions replicate on every rank's master.
    share = 1.0 / ranks
    rank_traces = tuple(
        ExecutionTrace(
            program=program,
            binary=binary,
            threads=threads,
            template_traces=tuple(
                TemplateTrace(
                    iters=part.iters * (share if template.parallel else 1.0),
                    footprint_scale=part.footprint_scale
                    * (share if template.parallel else 1.0),
                    hot_scale=part.hot_scale,
                    phase=part.phase,
                )
                for template, part in zip(program.templates, trace.template_traces, strict=True)
            ),
            bp_template=trace.bp_template,
            bp_instance=trace.bp_instance,
        )
        for trace in raw_traces
    )

    coalesced = []
    for t_idx, _template in enumerate(program.templates):
        parts = [trace.template_traces[t_idx] for trace in rank_traces]
        raw = first.template_traces[t_idx]
        coalesced.append(
            TemplateTrace(
                iters=np.concatenate([part.iters for part in parts], axis=2),
                # The coalesced trace keeps the *unscaled* drift state:
                # the hardware model divides the whole domain across all
                # R × T contexts itself, so folding the per-rank share in
                # here would discount the footprint twice.  Drift is a
                # deterministic function of the instance phase, identical
                # across ranks; rank 0's arrays are the canonical copy.
                footprint_scale=raw.footprint_scale,
                hot_scale=raw.hot_scale,
                phase=raw.phase,
            )
        )

    return DistributedTrace(
        program=program,
        binary=binary,
        threads=ranks * threads,
        template_traces=tuple(coalesced),
        bp_template=first.bp_template.copy(),
        bp_instance=first.bp_instance.copy(),
        ranks=ranks,
        rank_traces=rank_traces,
        comm=comm,
    )
