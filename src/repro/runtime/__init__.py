"""OpenMP-style runtime model.

The paper's unit of sampling is the OpenMP barrier: barrier points are
the inter-barrier regions of a worksharing program.  This package models
the runtime behaviour that shapes those regions:

* :mod:`repro.runtime.scheduler` — static loop scheduling: how a
  region's iterations divide over the thread team, including remainder
  and data-dependent imbalance.
* :mod:`repro.runtime.barriers` — barrier spin: threads that finish
  early busy-wait, which burns cycles (and a few instructions) until the
  slowest thread arrives.  This couples per-thread cycle counts exactly
  the way pinned native runs couple them.
* :mod:`repro.runtime.interleave` — run-to-run interleaving jitter: the
  reason the paper performs 10 barrier-point discovery runs per
  configuration and observes different barrier-point sets.
* :mod:`repro.runtime.execution` — drives a :class:`~repro.ir.program.Program`
  into an :class:`~repro.ir.trace.ExecutionTrace`.
"""

from repro.runtime.barriers import SPIN_IPC, barrier_spin
from repro.runtime.execution import execute_program
from repro.runtime.interleave import signature_jitter_sigma
from repro.runtime.scheduler import split_iterations, thread_shares

__all__ = [
    "split_iterations",
    "thread_shares",
    "barrier_spin",
    "SPIN_IPC",
    "signature_jitter_sigma",
    "execute_program",
]
