"""Out-of-core streaming reuse-distance engine (tile-merge formulation).

The monolithic vectorised kernel in :mod:`repro.mem.reuse` materialises
the whole access stream plus several same-sized intermediates — at the
10⁷–10⁸ accesses of a paper-scale trace that is gigabytes of transient
allocation and an O(N log² N) lexsort cascade.  This module processes
the stream tile by tile with carried state, keeping peak memory at
O(distinct lines + tile) while staying **bit-identical** to the
monolithic oracles (which remain in :mod:`repro.mem.reuse`, untouched,
as the golden reference — the PR 3/5 pattern).

Tile-merge formulation
======================

Between tiles the engine carries, for every distinct line seen so far,
the global position of its most recent access (the classic *marker*
set: position ``j`` is a marker iff it is the last access to its line).
For an access at global position ``i`` whose previous same-line access
is ``prev[i]``, the stack distance is the number of markers in the open
window ``(prev[i], i)`` *at time i*.  Within one tile starting at
global offset ``B`` this splits exactly:

* **intra-warm** (``prev[i] >= B``): every marker in the window was
  created inside the tile, so the distance reduces to the monolithic
  identity over tile-local positions —
  ``(i - prev[i] - 1) - #{q < i intra-warm : prev[q] > prev[i]}``.
  Cross-warm accesses never enter the correction term because their
  ``prev`` lies before ``B <= prev[i]``.

* **cross-warm** (``prev[i] < B``): the window decomposes into the
  pre-tile marker snapshot and in-tile activity::

      distance(i) =   #{pre-tile markers > prev[i]}          (term1)
                    - #{cross-warm q < i : prev[q] > prev[i]} (term2)
                    + #{intra-first j < i}                    (term3)

  term1 is one ``searchsorted`` against the sorted marker positions;
  term2 is a previous-greater count over the cross-warm subsequence
  (each such ``q`` consumed the pre-tile marker at ``prev[q]``); term3
  counts markers created inside the tile and still alive in the window
  (one per line first touched in the tile, all after ``B > prev[i]``).

Both correction terms use :func:`_count_previous_greater_fast`, a
bottom-up merge count that replaces the per-level two-key ``lexsort``
of the monolithic path with a pairwise base case plus single-key
``np.sort`` over packed ``(run, value, position)`` integers — ~6×
faster per element and, because tiles bound the run depth, the level
count stays at ``log2(tile)`` instead of ``log2(stream)``.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

import numpy as np

from repro.mem.reuse import COLD, _count_previous_greater

__all__ = [
    "ReuseStreamState",
    "iter_array_tiles",
    "reuse_distance_tiles",
    "reuse_distances_streamed",
    "reuse_histogram_streamed",
]

#: Default tile length for streamed kernels (accesses per tile).
DEFAULT_TILE_SIZE = 1 << 20

# Packing layout for the fast merge count: (run << 48) | (value << 24) | pos.
_PACK_BITS = 24
_PACK_MASK = (1 << _PACK_BITS) - 1
#: Largest input the packed merge handles: at the first merge level the
#: run index occupies bits 48+, so ``size >> 7`` must stay below 2^15
#: to clear the int64 sign bit.
_PGC_FAST_MAX = 1 << 22
#: Width of the brute-force base case (one 3-D broadcast per block).
_PGC_BASE = 64
#: Base-case blocks processed per broadcast chunk (bounds the (chunk,
#: base, base) boolean intermediate to ~16 MiB).
_PGC_CHUNK_BLOCKS = 4096


def _pgc_pairwise(values: np.ndarray, counts: np.ndarray) -> None:
    """Within-block previous-greater counts for blocks of ``_PGC_BASE``.

    Writes into ``counts`` (same length as ``values``).  Values must be
    non-negative; blocks are padded with -1 which never counts as
    greater and, sitting past every real position, never queries.
    """
    n = values.size
    base = _PGC_BASE
    pad = (-n) % base
    # int32 comparisons halve the broadcast traffic; callers guarantee
    # values < 2^24 so the narrowing is lossless.
    v = values.astype(np.int32, copy=False)
    if pad:
        v = np.concatenate([v, np.full(pad, -1, dtype=np.int32)])
    blocks = v.reshape(-1, base)
    tri = np.tril(np.ones((base, base), dtype=bool), -1)  # [t, s] = s < t
    out = np.empty(blocks.shape, dtype=np.int16)
    for start in range(0, blocks.shape[0], _PGC_CHUNK_BLOCKS):
        chunk = blocks[start : start + _PGC_CHUNK_BLOCKS]
        gt = (chunk[:, None, :] > chunk[:, :, None]) & tri[None, :, :]
        out[start : start + _PGC_CHUNK_BLOCKS] = gt.sum(axis=2, dtype=np.int16)
    counts[:] = out.reshape(-1)[:n]


def _count_previous_greater_fast(values: np.ndarray) -> np.ndarray:
    """``c[t] = #{s < t : values[s] > values[t]}`` — fast formulation.

    Bit-identical to :func:`repro.mem.reuse._count_previous_greater`
    (property-tested), but built from a pairwise-broadcast base case
    and packed single-key ``np.sort`` merges instead of per-level
    two-key lexsorts.  Requires distinct, non-negative values; inputs
    that cannot be packed into the ``(run, value, pos)`` layout fall
    back to the lexsort oracle.
    """
    n = values.size
    counts = np.zeros(n, dtype=np.int64)
    if n < 2:
        return counts
    if n > _PGC_FAST_MAX or int(values.max()) >= _PACK_MASK:
        return _count_previous_greater(values)
    _pgc_pairwise(values, counts)
    if n <= _PGC_BASE:
        return counts

    size = _PGC_BASE
    while size < n:
        size *= 2
    # Values are stored +1 so padding (0) sorts first and, counted into
    # ``left_before``, drops out of the greater-count; padding positions
    # sit past every real position so they never receive contributions
    # that matter (their slots in ``ext`` are discarded).
    v = np.zeros(size, dtype=np.int64)
    v[:n] = values
    v[:n] += 1
    pos = np.arange(size, dtype=np.int64)
    work = (v << _PACK_BITS) | pos
    ext = np.zeros(size, dtype=np.int64)
    ext[:n] = counts
    width = _PGC_BASE
    while width < size:
        # Reshaping to one run per row and sorting axis-1 merges the
        # two halves (runs stay value-sorted level to level, positions
        # ride in the low bits); the in-run column index then replaces
        # the flat formulation's run-start bookkeeping outright.
        rows = work.reshape(-1, 2 * width)
        rows.sort(axis=1)
        in_right = (rows >> width.bit_length() - 1) & 1
        right_before = np.cumsum(in_right, axis=1) - in_right
        left_before = np.arange(2 * width, dtype=np.int64)[None, :] - right_before
        contrib = in_right * (width - left_before)
        # Positions are distinct, so the fancy += cannot collide.
        ext[work & _PACK_MASK] += contrib.reshape(-1)
        width *= 2
    return ext[:n]


class ReuseStreamState:
    """Carried state for exact streamed stack distances.

    Feed consecutive tiles of one access stream; each call returns the
    exact distances of that tile's accesses, bit-identical to running
    the monolithic kernel over the concatenated stream.  Memory is
    O(distinct lines + tile length), independent of stream length.
    """

    def __init__(self) -> None:
        self._known_lines = np.empty(0, dtype=np.int64)  # sorted
        self._known_pos = np.empty(0, dtype=np.int64)  # aligned last-seen
        # Sorted marker positions (== np.sort(known_pos), maintained
        # incrementally: deletions reuse the cross-access query ranks,
        # insertions are this tile's last-touch positions, which arrive
        # pre-sorted and beyond every existing marker).
        self._marker_sorted = np.empty(0, dtype=np.int64)
        self._offset = 0

    @property
    def accesses_seen(self) -> int:
        """Total accesses consumed so far."""
        return self._offset

    @property
    def distinct_lines(self) -> int:
        """Distinct lines seen so far (carried-state footprint)."""
        return int(self._known_lines.size)

    def feed(self, tile: np.ndarray) -> np.ndarray:
        """Consume one tile; return its exact stack distances."""
        tile = np.asarray(tile)
        if tile.ndim != 1:
            raise ValueError(f"tile must be 1-D, got shape {tile.shape}")
        n = tile.size
        if n == 0:
            return np.empty(0, dtype=np.int64)
        tile = tile.astype(np.int64, copy=False)

        uniq, inverse = np.unique(tile, return_inverse=True)
        inverse = inverse.astype(np.int64, copy=False)
        local = np.arange(n, dtype=np.int64)

        # Tile-local previous occurrence via one packed argsort-free
        # grouping: sorting (line-rank << k | pos) groups by line with
        # positions ascending inside each group.
        shift = max(n.bit_length(), 1)
        grouped = np.sort((inverse << shift) | local)
        g_pos = grouped & ((1 << shift) - 1)
        g_line = grouped >> shift
        intra_prev = np.full(n, -1, dtype=np.int64)
        same = g_line[1:] == g_line[:-1]
        intra_prev[g_pos[1:][same]] = g_pos[:-1][same]
        intra_first = intra_prev < 0

        # Map tile lines into carried state.
        ki = np.searchsorted(self._known_lines, uniq)
        ki_clipped = np.minimum(ki, max(self._known_lines.size - 1, 0))
        if self._known_lines.size:
            uniq_known = self._known_lines[ki_clipped] == uniq
        else:
            uniq_known = np.zeros(uniq.size, dtype=bool)

        distances = np.full(n, COLD, dtype=np.int64)

        # --- intra-warm: the monolithic identity over local positions.
        intra_warm_idx = np.flatnonzero(~intra_first)
        if intra_warm_idx.size:
            warm_prev = intra_prev[intra_warm_idx]
            corr = _count_previous_greater_fast(warm_prev)
            distances[intra_warm_idx] = intra_warm_idx - warm_prev - 1 - corr

        # --- cross-warm: first in-tile touch of a line known from
        # earlier tiles.
        access_known = uniq_known[inverse]
        cross_idx = np.flatnonzero(intra_first & access_known)
        prefix_first = np.cumsum(intra_first) - intra_first  # term3
        marker_sorted = self._marker_sorted
        rank = np.empty(0, dtype=np.int64)
        if cross_idx.size:
            gprev = self._known_pos[ki_clipped[inverse[cross_idx]]]
            # Each gprev is itself a marker, so one rank query yields
            # both term1 (markers strictly above it) and, via the
            # order-preserving rank, the merge-count input.  Queries
            # are sorted first: sequential binary searches on a sorted
            # probe stream stay cache-resident.
            qorder = np.argsort(gprev)
            rank = np.empty(cross_idx.size, dtype=np.int64)
            rank[qorder] = np.searchsorted(marker_sorted, gprev[qorder])
            term1 = marker_sorted.size - rank - 1
            term2 = _count_previous_greater_fast(rank)
            distances[cross_idx] = term1 - term2 + prefix_first[cross_idx]

        # --- merge this tile's last-seen positions into carried state.
        # The grouped order ends each line group at its last position.
        group_last = np.empty(uniq.size, dtype=np.int64)
        boundaries = np.flatnonzero(
            ~np.concatenate([same, np.zeros(1, dtype=bool)])
        )
        group_last[g_line[boundaries]] = g_pos[boundaries]
        new_pos = self._offset + group_last

        # New markers are exactly this tile's last-touch positions —
        # the locals never referenced as an in-tile ``prev`` — already
        # in ascending order and beyond every pre-tile marker.
        is_prev = np.zeros(n, dtype=bool)
        is_prev[intra_prev[~intra_first]] = True
        new_markers = self._offset + np.flatnonzero(~is_prev)
        if marker_sorted.size:
            keep = np.ones(marker_sorted.size, dtype=bool)
            keep[rank] = False  # re-touched lines' old markers die
            self._marker_sorted = np.concatenate(
                [marker_sorted[keep], new_markers]
            )
        else:
            self._marker_sorted = new_markers

        if self._known_lines.size:
            self._known_pos[ki_clipped[uniq_known]] = new_pos[uniq_known]
            fresh = ~uniq_known
            n_fresh = int(np.count_nonzero(fresh))
            if n_fresh:
                # One hand-rolled merge for both aligned arrays (the
                # np.insert idiom rebuilds its scatter mask per call).
                total = self._known_lines.size + n_fresh
                slots = ki[fresh] + np.arange(n_fresh, dtype=np.int64)
                old = np.ones(total, dtype=bool)
                old[slots] = False
                merged_lines = np.empty(total, dtype=np.int64)
                merged_pos = np.empty(total, dtype=np.int64)
                merged_lines[slots] = uniq[fresh]
                merged_pos[slots] = new_pos[fresh]
                merged_lines[old] = self._known_lines
                merged_pos[old] = self._known_pos
                self._known_lines = merged_lines
                self._known_pos = merged_pos
        else:
            self._known_lines = uniq
            self._known_pos = new_pos

        self._offset += n
        return distances


def iter_array_tiles(
    lines: np.ndarray, tile_size: int = DEFAULT_TILE_SIZE
) -> Iterator[np.ndarray]:
    """View an in-memory stream as tiles (no copies)."""
    if tile_size < 1:
        raise ValueError(f"tile_size must be positive, got {tile_size}")
    lines = np.asarray(lines)
    for start in range(0, lines.size, tile_size):
        yield lines[start : start + tile_size]


def reuse_distance_tiles(
    tiles: Iterable[np.ndarray],
) -> Iterator[np.ndarray]:
    """Map a stream of access tiles to a stream of distance tiles."""
    state = ReuseStreamState()
    for tile in tiles:
        yield state.feed(tile)


def reuse_distances_streamed(
    lines: np.ndarray, tile_size: int = DEFAULT_TILE_SIZE
) -> np.ndarray:
    """Exact stack distances of an in-memory stream, computed tile-wise.

    Bit-identical to :func:`repro.mem.reuse.reuse_distances`; exists so
    benchmarks and tests can compare the engines on one buffer.  True
    out-of-core use goes through :func:`reuse_distance_tiles` over a
    :class:`~repro.exec.columnar.TraceTileReader`.
    """
    pieces = list(reuse_distance_tiles(iter_array_tiles(lines, tile_size)))
    if not pieces:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(pieces)


def reuse_histogram_streamed(
    tiles: Iterable[np.ndarray], n_bins: int
) -> np.ndarray:
    """Streamed LDV: accumulate the reuse histogram tile by tile.

    Bit-identical to ``reuse_histogram(reuse_distances(stream))`` —
    the histogram is a sum of non-negative integer counts, so the
    tile-wise accumulation order cannot change the result.
    """
    from repro.mem.reuse import reuse_histogram

    hist = np.zeros(n_bins, dtype=float)
    for distances in reuse_distance_tiles(tiles):
        hist += reuse_histogram(distances, n_bins)
    return hist
