"""Analytic cache-miss model built on stack distances.

For an LRU cache, an access hits iff its stack distance is below the
cache's capacity in lines; set-associative caches blur that threshold
(conflicts evict early, the full capacity is rarely usable).  We model
the blur as a ramp in log-distance space around the *effective* capacity,
a standard smoothing of the stack-distance step function.

Misses for a block are obtained by integrating the pattern's
characteristic-distance decomposition (shared with the LDV builder, see
:mod:`repro.mem.ldv`) against this ramp — one closed-form expression,
vectorised over region instances, which is what keeps full Table IV
sweeps fast.
"""

from __future__ import annotations

import numpy as np

from repro.ir.memory import PatternKind
from repro.mem.ldv import characteristic_distances, hot_distances

__all__ = [
    "effective_capacity_lines",
    "miss_probability",
    "miss_fraction",
    "miss_fraction_levels",
    "misses_from_ldv",
]

#: The miss ramp spans [RAMP_LO * C_eff, RAMP_HI * C_eff] in distance.
_RAMP_LO = 0.5
_RAMP_HI = 2.0
_LOG_LO = np.log2(_RAMP_LO)
_LOG_SPAN = np.log2(_RAMP_HI) - np.log2(_RAMP_LO)


def effective_capacity_lines(size_bytes: float, associativity: int, line_bytes: int = 64) -> float:
    """Usable LRU capacity in lines for a set-associative cache.

    Low associativity wastes capacity to conflicts; the classic rule of
    thumb ``1 - 0.5 / assoc`` captures the trend (a direct-mapped cache
    behaves like roughly half its size, an 8-way like ~94%).
    """
    if size_bytes <= 0 or associativity < 1 or line_bytes <= 0:
        raise ValueError("cache geometry must be positive")
    lines = size_bytes / line_bytes
    return lines * (1.0 - 0.5 / associativity)


def miss_probability(distance_lines: np.ndarray, capacity_eff_lines) -> np.ndarray:
    """Probability that an access at a given stack distance misses.

    Zero below half the effective capacity, one above twice it, and
    log-linear in between.  ``inf`` distances (cold accesses) miss.
    ``capacity_eff_lines`` may be an array (it broadcasts against the
    distances), which is how the multi-level evaluation computes every
    cache level in one pass.
    """
    caps = np.asarray(capacity_eff_lines, dtype=float)
    if np.any(caps <= 0):
        raise ValueError(f"capacity must be positive, got {capacity_eff_lines}")
    d = np.asarray(distance_lines, dtype=float)
    with np.errstate(divide="ignore", invalid="ignore"):
        x = (np.log2(np.maximum(d, 1e-9) / caps) - _LOG_LO) / _LOG_SPAN
    p = np.clip(x, 0.0, 1.0)
    return np.where(np.isinf(d), 1.0, p)


def miss_fraction(
    kind: PatternKind,
    footprint_lines: np.ndarray,
    hot_lines: float,
    hot_fraction: np.ndarray,
    capacity_eff_lines: float,
) -> np.ndarray:
    """Fraction of a block's accesses that miss a cache level.

    Parameters
    ----------
    kind:
        Access pattern kind (selects the reuse decomposition).
    footprint_lines:
        Per-thread footprint in lines, vectorised over instances.
    hot_lines:
        Hot-set size in lines (scalar, per thread).
    hot_fraction:
        Effective hot fraction per instance (drift applied).
    capacity_eff_lines:
        Effective capacity of the level as seen by one thread.

    Returns
    -------
    numpy.ndarray
        Per-instance miss fractions in ``[0, 1]``.
    """
    return miss_fraction_levels(
        kind, footprint_lines, hot_lines, hot_fraction, (capacity_eff_lines,)
    )[0]


def miss_fraction_levels(
    kind: PatternKind,
    footprint_lines: np.ndarray,
    hot_lines: float,
    hot_fraction: np.ndarray,
    capacities_eff_lines,
) -> np.ndarray:
    """Per-level miss fractions of one block's accesses, in one pass.

    The whole-hierarchy form of :func:`miss_fraction`: the pattern's
    reuse decomposition is walked once and each characteristic distance
    is scored against *every* capacity by broadcasting, instead of
    re-deriving the decomposition per level.  This is the hot kernel of
    the performance model — a thread-count sweep evaluates it for every
    (block, level, instance) triple — and the batched form cuts the
    Python-level passes from ``levels × components`` to ``components``.

    Parameters
    ----------
    capacities_eff_lines:
        Effective capacities (in lines) of the levels to evaluate,
        shape ``(n_levels,)``.

    Returns
    -------
    numpy.ndarray
        ``(n_levels, n_instances)`` miss fractions in ``[0, 1]``; row
        ``i`` is exactly ``miss_fraction(..., capacities[i])``.
    """
    caps = np.asarray(capacities_eff_lines, dtype=float)[:, None]
    hot_fraction = np.clip(np.asarray(hot_fraction, dtype=float), 0.0, 1.0)
    footprint_lines = np.asarray(footprint_lines, dtype=float)
    hot_part = np.zeros((caps.shape[0],) + hot_fraction.shape)
    for weight, distance in hot_distances(hot_lines):
        hot_part = hot_part + weight * miss_probability(distance, caps)
    cold_part = np.zeros((caps.shape[0],) + footprint_lines.shape)
    for weight, distances in characteristic_distances(kind, footprint_lines):
        cold_part = cold_part + weight * miss_probability(distances, caps)
    return hot_fraction * hot_part + (1.0 - hot_fraction) * cold_part


def misses_from_ldv(ldv_counts: np.ndarray, capacity_eff_lines: float) -> np.ndarray:
    """Expected misses given an LDV histogram of access counts.

    Used by the validation tests to check that the exact path (stream →
    stack distances → histogram) and this analytic ramp agree.
    """
    from repro.mem.ldv import distance_bin_centers

    counts = np.asarray(ldv_counts, dtype=float)
    probs = miss_probability(distance_bin_centers(), capacity_eff_lines)
    return counts @ probs
