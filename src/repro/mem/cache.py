"""Trace-driven set-associative LRU cache simulation (exact path).

A faithful, if deliberately simple, cache model: physically indexed sets,
true-LRU replacement, allocate-on-miss for both loads and stores.  Used
to validate the analytic miss model and to power the
``exact_vs_analytical`` example; the paper-scale experiments use the
analytic path instead.

The batched entry points (:meth:`CacheSimulator.simulate`,
:meth:`CacheSimulator.miss_mask`) run a numpy lockstep simulation: the
stream is grouped by set, every set's recency stack is held as one row
of a ``(sets_touched, associativity)`` matrix, and a single Python-level
step advances *all* sets by one access.  The per-access Python loop
(list scans, ``remove``/``append``) only survives as the scalar
:meth:`CacheSimulator.access` API and as the fallback for degenerate
streams that concentrate on a few sets, where lockstep rounds would
be as long as the stream itself.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "SimulatedMisses",
    "CacheSimulator",
    "CacheTileState",
    "HierarchySimulator",
]

# --- packed-LRU constants (see CacheSimulator._packed_tile) -----------------
#: Replicates a rank byte across all eight lanes of a uint64.
_REP = np.uint64(0x0101010101010101)
#: High bit of every byte lane (zero-byte detection).
_HI = np.uint64(0x8080808080808080)
#: Maps the isolated high bit of lane ``k`` (shifted down 7) to ``k``.
_LANE_IDX = np.uint64(0x0001020304050607)
#: Per-way masks: bytes strictly above way ``b`` / strictly below way ``b``.
_KEEP_HIGH = np.array(
    [np.uint64(0) if b == 7 else ~np.uint64((1 << (8 * b + 8)) - 1) for b in range(8)],
    dtype=np.uint64,
)
_KEEP_LOW = np.array([np.uint64((1 << (8 * b)) - 1) for b in range(8)], dtype=np.uint64)
#: Rank values 254/255 are reserved (padding / empty way).
_MAX_RANK = 253
_PAD_RANK = np.uint8(0xFE)


def _merge_stacks(d: np.ndarray, e: np.ndarray, assoc: int) -> np.ndarray:
    """Compose LRU stacks: state ``e``, then a segment whose last-distinct
    accesses (MRU-first) are ``d``.

    Both are ``(m, 8)`` uint8 rank arrays with 0xFF marking empty ways.
    The result is the segment's distinct ranks followed by the entry
    ranks it did not touch, truncated to ``assoc`` — exactly the LRU
    stack after replaying the segment on top of ``e``.
    """
    member = (e[:, :, None] == d[:, None, :]).any(axis=2)
    keep = np.concatenate([d != 0xFF, (~member) & (e != 0xFF)], axis=1)
    cand = np.concatenate([d, e], axis=1)
    posn = np.cumsum(keep, axis=1) - keep
    out = np.full_like(e, 0xFF)
    sel = keep & (posn < assoc)
    r, c = np.nonzero(sel)
    out[r, posn[r, c]] = cand[r, c]
    return out


@dataclass
class CacheTileState:
    """Carried LRU state for tile-at-a-time simulation.

    One row per set, MRU at column 0 — the same layout the lockstep
    kernel uses internally, held across tile boundaries so a stream
    can be consumed in bounded-memory chunks with results bit-identical
    to a monolithic :meth:`CacheSimulator.miss_mask` run.
    """

    stacks: np.ndarray
    occupied: np.ndarray
    accesses: int = 0
    misses: int = 0

    @classmethod
    def cold(cls, n_sets: int, ways: int) -> "CacheTileState":
        """All-invalid state (what a fresh simulation starts from)."""
        return cls(
            stacks=np.zeros((n_sets, ways), dtype=np.int64),
            occupied=np.zeros((n_sets, ways), dtype=bool),
        )

    @property
    def result(self) -> SimulatedMisses:
        """Aggregate counts consumed so far."""
        return SimulatedMisses(accesses=self.accesses, misses=self.misses)


@dataclass(frozen=True)
class SimulatedMisses:
    """Result of simulating a stream through one cache (or hierarchy level)."""

    accesses: int
    misses: int

    @property
    def hits(self) -> int:
        """Number of accesses that hit."""
        return self.accesses - self.misses

    @property
    def miss_rate(self) -> float:
        """Misses per access (0 for an empty stream)."""
        return self.misses / self.accesses if self.accesses else 0.0


class CacheSimulator:
    """One set-associative LRU cache operating on line identifiers.

    Parameters
    ----------
    size_bytes:
        Total capacity.
    associativity:
        Ways per set; must divide the line count evenly.
    line_bytes:
        Line size (both paper machines use 64 bytes).
    """

    def __init__(self, size_bytes: int, associativity: int, line_bytes: int = 64) -> None:
        if size_bytes <= 0 or associativity < 1 or line_bytes <= 0:
            raise ValueError("cache geometry must be positive")
        n_lines = size_bytes // line_bytes
        if n_lines == 0 or n_lines % associativity != 0:
            raise ValueError(
                f"size {size_bytes} B / line {line_bytes} B not divisible into "
                f"{associativity}-way sets"
            )
        self.size_bytes = size_bytes
        self.associativity = associativity
        self.line_bytes = line_bytes
        self.n_sets = n_lines // associativity
        # Per set: list of tags, most-recently-used last.
        self._sets: list[list[int]] = [[] for _ in range(self.n_sets)]

    def reset(self) -> None:
        """Invalidate all contents."""
        self._sets = [[] for _ in range(self.n_sets)]

    def access(self, line: int) -> bool:
        """Access one line; return ``True`` on hit.  Misses allocate."""
        set_idx = line % self.n_sets
        tag = line // self.n_sets
        ways = self._sets[set_idx]
        try:
            ways.remove(tag)
        except ValueError:
            if len(ways) >= self.associativity:
                ways.pop(0)  # evict true-LRU
            ways.append(tag)
            return False
        ways.append(tag)  # move to MRU
        return True

    def simulate(self, lines: np.ndarray) -> SimulatedMisses:
        """Run a whole stream; returns aggregate counts (cold start)."""
        mask = self.miss_mask(lines)
        return SimulatedMisses(accesses=int(mask.size), misses=int(mask.sum()))

    def miss_mask(self, lines: np.ndarray) -> np.ndarray:
        """Per-access miss flags for a stream (cold start)."""
        self.reset()
        lines = np.asarray(lines, dtype=np.int64)
        if lines.size == 0:
            return np.zeros(0, dtype=bool)
        set_idx = lines % self.n_sets
        counts = np.bincount(set_idx, minlength=self.n_sets)
        longest_run = int(counts.max())
        # A lockstep round costs ~a dozen small numpy ops; it only wins
        # when each round retires many sets.  Streams concentrated on a
        # handful of sets (fully-associative caches, adversarial tests)
        # fall back to the scalar walk.
        if longest_run > max(64, lines.size // 4):
            mask = np.zeros(lines.size, dtype=bool)
            for i, line in enumerate(lines):
                mask[i] = not self.access(int(line))
            self.reset()
            return mask
        return self._miss_mask_lockstep(lines, set_idx, counts)

    # -- tile-at-a-time API -------------------------------------------------

    def tile_state(self) -> CacheTileState:
        """Fresh cold state for :meth:`miss_mask_tile` streaming."""
        return CacheTileState.cold(self.n_sets, self.associativity)

    def miss_mask_tile(
        self, lines: np.ndarray, state: CacheTileState
    ) -> np.ndarray:
        """Per-access miss flags for one tile, carrying LRU state.

        Feeding consecutive tiles of a stream produces masks
        bit-identical to one :meth:`miss_mask` call over the whole
        stream, with peak memory proportional to the tile (plus the
        fixed ``(n_sets, ways)`` state).

        Dispatches to the packed byte-lane engine when the geometry
        allows (≤ 8 ways, per-set distinct lines this tile ≤ 254) and
        falls back to the carried-state lockstep/scalar walk otherwise.
        """
        lines = np.asarray(lines, dtype=np.int64)
        if lines.size == 0:
            return np.zeros(0, dtype=bool)
        mask = None
        if self.associativity <= 8:
            mask = self._packed_tile(lines, state)
        if mask is None:
            set_idx = lines % self.n_sets
            counts = np.bincount(set_idx, minlength=self.n_sets)
            longest_run = int(counts.max())
            if longest_run > max(64, lines.size // 4):
                mask = self._scalar_tile(lines, state)
            else:
                mask = self._lockstep_tile(lines, set_idx, counts, state)
        state.accesses += int(lines.size)
        state.misses += int(mask.sum())
        return mask

    def _packed_tile(
        self, lines: np.ndarray, state: CacheTileState
    ) -> np.ndarray | None:
        """Segment-parallel packed-LRU tile kernel.

        Every set's recency stack is one ``uint64``: eight byte lanes,
        MRU in byte 0, ways holding per-set dense *ranks* instead of
        tags (0xFF = empty).  A whole access retires per row per step
        with ~20 elementwise integer ops — hit detection is the
        classic zero-byte trick on ``stack XOR broadcast(rank)``, and
        the stack update is two mask-and-shift terms via per-way LUTs,
        with no per-way matrix anywhere.

        To keep step counts short on few-set geometries, each set's
        run is cut into fixed-length segments simulated as independent
        rows.  Their entry states come from a sequential fold of
        per-segment *digests* (the last ≤ ``ways`` distinct ranks of a
        segment, which are entry-independent), using the LRU
        composition law: stack-after(A·B) = B's stack, then A's tags
        not in B, truncated.  The fold runs once per segment level on
        set-count-sized arrays, so its cost is negligible next to the
        step loop.

        Returns ``None`` (before touching ``state``) when the tile
        does not fit the packed layout; the caller then uses the
        lockstep path.
        """
        n = int(lines.size)
        n_sets = self.n_sets
        assoc = self.associativity
        if n >= 1 << 22 or n_sets >= 1 << 22:
            return None
        set_idx = lines % n_sets
        tags = lines // n_sets
        if int(tags.max()) >= 1 << 38 or int(tags.min()) < 0:
            return None

        # Group by set, time order preserved (order rides the low bits).
        sb = max(n.bit_length(), 1)
        gsort = np.sort((set_idx << sb) | np.arange(n, dtype=np.int64))
        order = gsort & ((1 << sb) - 1)
        s_sorted = gsort >> sb
        t_sorted = tags[order]

        # Distinct (set, tag) table over tile ∪ resident ways, giving
        # each line a dense per-set rank that must fit a byte.
        res_set, res_way = np.nonzero(state.occupied)
        res_tag = state.stacks[res_set, res_way]
        key_acc = (s_sorted << 38) | t_sorted
        key_res = (res_set.astype(np.int64) << 38) | res_tag
        table = np.sort(np.concatenate([key_acc, key_res]))
        fresh = np.empty(table.size, dtype=bool)
        fresh[0] = True
        np.not_equal(table[1:], table[:-1], out=fresh[1:])
        table = table[fresh]
        t_set = table >> 38
        first = np.empty(table.size, dtype=bool)
        first[0] = True
        np.not_equal(t_set[1:], t_set[:-1], out=first[1:])
        tbl_idx = np.arange(table.size, dtype=np.int64)
        grp_start = np.maximum.accumulate(np.where(first, tbl_idx, 0))
        rank = tbl_idx - grp_start
        if int(rank.max(initial=0)) > _MAX_RANK:
            return None
        acc_grank = np.searchsorted(table, key_acc)
        acc_rank = rank[acc_grank].astype(np.uint8)

        # Segmentation: rows of ≤ L consecutive same-set accesses.
        counts = np.bincount(set_idx, minlength=n_sets)
        touched = np.flatnonzero(counts)
        runs = counts[touched]
        mean_run = max(n // touched.size, 1)
        seg_len = 1 << min(max(mean_run.bit_length() - 2, 4), 9)
        segs = -(-runs // seg_len)
        n_rows = int(segs.sum())
        set_start = np.zeros(touched.size, dtype=np.int64)
        np.cumsum(runs[:-1], out=set_start[1:])
        row_base = np.zeros(touched.size, dtype=np.int64)
        np.cumsum(segs[:-1], out=row_base[1:])
        gidx = np.arange(n, dtype=np.int64)
        local = gidx - np.repeat(set_start, runs)
        acc_row = np.repeat(row_base, runs) + local // seg_len
        acc_col = local % seg_len
        seg_in_set = np.arange(n_rows) - np.repeat(row_base, segs)
        row_len = np.minimum(np.repeat(runs, segs) - seg_in_set * seg_len, seg_len)
        padded = np.full((n_rows, seg_len), _PAD_RANK, dtype=np.uint8)
        padded[acc_row, acc_col] = acc_rank

        # Per-row digests: last ≤ ways distinct ranks, MRU-first.  An
        # access is its line's row-local last touch iff its next
        # same-line occurrence falls outside the row.
        g2 = np.sort((acc_grank << sb) | gidx)
        gp = g2 & ((1 << sb) - 1)
        gl = g2 >> sb
        nxt = np.full(n, n, dtype=np.int64)
        adj = gl[1:] == gl[:-1]
        nxt[gp[:-1][adj]] = gp[1:][adj]
        has_next = nxt < n
        nxt_row = np.full(n, -1, dtype=np.int64)
        nxt_row[has_next] = acc_row[nxt[has_next]]
        rep_idx = np.flatnonzero(nxt_row != acc_row)
        rep_row = acc_row[rep_idx]
        fwd = np.arange(rep_idx.size, dtype=np.int64)
        row_first = np.empty(rep_idx.size, dtype=bool)
        if rep_idx.size:
            row_first[0] = True
            np.not_equal(rep_row[1:], rep_row[:-1], out=row_first[1:])
        rep_start = np.maximum.accumulate(np.where(row_first, fwd, 0))
        reps_in_row = np.bincount(rep_row, minlength=n_rows)
        revrank = reps_in_row[rep_row] - 1 - (fwd - rep_start)
        in_digest = revrank < assoc
        digests = np.full((n_rows, 8), 0xFF, dtype=np.uint8)
        digests[rep_row[in_digest], revrank[in_digest]] = acc_rank[
            rep_idx[in_digest]
        ]

        # Entry states: seed from carried residents, fold digests.
        entry_set = np.full((touched.size, 8), 0xFF, dtype=np.uint8)
        if res_set.size:
            res_pos = np.searchsorted(touched, res_set)
            res_pos = np.minimum(res_pos, touched.size - 1)
            res_here = touched[res_pos] == res_set
            res_rank = rank[np.searchsorted(table, key_res)]
            entry_set[res_pos[res_here], res_way[res_here]] = res_rank[res_here]
        entry_rows = np.empty((n_rows, 8), dtype=np.uint8)
        for k in range(int(segs.max())):
            haverow = segs > k
            rows_k = row_base[haverow] + k
            entry_rows[rows_k] = entry_set[haverow]
            entry_set = entry_set.copy()
            entry_set[haverow] = _merge_stacks(
                digests[rows_k], entry_set[haverow], assoc
            )

        # Packed step loop.
        stacks = entry_rows.reshape(-1).view(np.uint64)
        miss_mat = np.empty((n_rows, seg_len), dtype=bool)
        u7 = np.uint64(7)
        u8 = np.uint64(8)
        u56 = np.uint64(56)
        evict = np.uint64(assoc - 1)
        one = np.uint64(1)
        for step in range(seg_len):
            cur8 = padded[:, step].astype(np.uint64)
            active = row_len > step
            x = stacks ^ (cur8 * _REP)
            zb = (x - _REP) & ~x & _HI
            hit = zb != 0
            low = zb & (~zb + one)
            way = ((low >> u7) * _LANE_IDX) >> u56
            way = np.where(hit, way, evict)
            updated = (
                (stacks & _KEEP_HIGH[way])
                | ((stacks & _KEEP_LOW[way]) << u8)
                | cur8
            )
            stacks = np.where(active, updated, stacks)
            miss_mat[:, step] = ~hit & active

        # Scatter misses back to arrival order.
        valid = np.arange(seg_len)[None, :] < row_len[:, None]
        mask = np.zeros(n, dtype=bool)
        mask[order] = miss_mat.ravel()[valid.ravel()]

        # Decode the folded final per-set stacks (ranks → tags).
        final = entry_set.view(np.uint8).reshape(touched.size, 8)[:, :assoc]
        occ = final != 0xFF
        tag_of = table & ((1 << 38) - 1)
        starts = np.zeros(n_sets, dtype=np.int64)
        starts[t_set[first]] = np.flatnonzero(first)
        idx = starts[touched][:, None] + np.where(occ, final, 0)
        state.stacks[touched] = np.where(occ, tag_of[idx], 0)
        state.occupied[touched] = occ
        return mask

    def simulate_tiled(self, tiles) -> SimulatedMisses:
        """Run a tile iterable through the cache; aggregate counts."""
        state = self.tile_state()
        for tile in tiles:
            self.miss_mask_tile(tile, state)
        return state.result

    def _scalar_tile(
        self, lines: np.ndarray, state: CacheTileState
    ) -> np.ndarray:
        """Scalar walk for degenerate tiles, hydrating touched sets
        from the carried state and dehydrating them afterwards."""
        n_sets = self.n_sets
        ways_n = self.associativity
        mask = np.zeros(lines.size, dtype=bool)
        lists: dict[int, list[int]] = {}
        for i in range(lines.size):
            line = int(lines[i])
            s = line % n_sets
            tag = line // n_sets
            ways = lists.get(s)
            if ways is None:
                occ = state.occupied[s]
                # Row layout is MRU-first; the scalar list is MRU-last.
                ways = [int(t) for t in state.stacks[s][occ][::-1]]
                lists[s] = ways
            try:
                ways.remove(tag)
            except ValueError:
                if len(ways) >= ways_n:
                    ways.pop(0)
                ways.append(tag)
                mask[i] = True
            else:
                ways.append(tag)
        for s, ways in lists.items():
            k = len(ways)
            state.stacks[s, :k] = ways[::-1]
            state.occupied[s, :k] = True
            state.occupied[s, k:] = False
        return mask

    def _lockstep_tile(
        self,
        lines: np.ndarray,
        set_idx: np.ndarray,
        counts: np.ndarray,
        state: CacheTileState,
    ) -> np.ndarray:
        """Vectorised miss flags: advance every touched set in lockstep.

        Each touched set's accesses form one row of a padded tag
        matrix; the LRU stacks of all rows live in a ``(rows, ways)``
        matrix with MRU at column 0, and each lockstep step consumes
        one access per row with pure array ops.  Exactly equivalent to
        the scalar walk (true LRU, allocate-on-miss), starting from and
        depositing back into the carried per-set state.
        """
        ways_n = self.associativity
        tags = lines // self.n_sets
        order = np.argsort(set_idx, kind="stable")
        touched = np.flatnonzero(counts)
        run_lengths = counts[touched]
        starts = np.zeros(touched.size, dtype=np.int64)
        np.cumsum(run_lengths[:-1], out=starts[1:])
        rows = np.repeat(np.arange(touched.size), run_lengths)
        cols = np.arange(lines.size) - starts[rows]

        longest = int(run_lengths.max())
        padded = np.zeros((touched.size, longest), dtype=np.int64)
        padded[rows, cols] = tags[order]

        stacks = state.stacks[touched]  # fancy index → private copy
        occupied = state.occupied[touched]
        miss_sorted = np.zeros(lines.size, dtype=bool)
        way_range = np.arange(ways_n)
        for step in range(longest):
            active = run_lengths > step
            current = padded[:, step]
            match = occupied & (stacks == current[:, None])
            hit = match.any(axis=1)
            # Hit: rotate columns 0..w into 1..w and insert at MRU.
            # Miss: shift everything right (the LRU way at the last
            # column falls off — a no-op eviction while filling).
            # Inactive rows keep their state untouched (w = -1).
            w = np.where(hit, match.argmax(axis=1), ways_n - 1)
            w = np.where(active, w, -1)
            keep = way_range[None, :] > w[:, None]
            shifted = np.empty_like(stacks)
            shifted[:, 0] = current
            shifted[:, 1:] = stacks[:, :-1]
            shifted_occ = np.empty_like(occupied)
            shifted_occ[:, 0] = True
            shifted_occ[:, 1:] = occupied[:, :-1]
            stacks = np.where(keep, stacks, shifted)
            occupied = np.where(keep, occupied, shifted_occ)
            idx = starts[active] + step
            miss_sorted[idx] = ~hit[active]

        state.stacks[touched] = stacks
        state.occupied[touched] = occupied
        mask = np.zeros(lines.size, dtype=bool)
        mask[order] = miss_sorted
        return mask

    def _miss_mask_lockstep(
        self, lines: np.ndarray, set_idx: np.ndarray, counts: np.ndarray
    ) -> np.ndarray:
        """Cold-start lockstep (one-tile case of :meth:`_lockstep_tile`)."""
        return self._lockstep_tile(
            lines, set_idx, counts, CacheTileState.cold(self.n_sets, self.associativity)
        )


class HierarchySimulator:
    """An inclusive multi-level hierarchy: misses of level i feed level i+1.

    Mirrors the two levels the paper reports (L1D and L2 data misses),
    plus optionally the shared L3 for stall modelling.
    """

    def __init__(self, levels: list[CacheSimulator]) -> None:
        if not levels:
            raise ValueError("hierarchy needs at least one level")
        self.levels = levels

    def simulate(self, lines: np.ndarray) -> list[SimulatedMisses]:
        """Run a stream through every level; returns per-level counts."""
        for cache in self.levels:
            cache.reset()
        lines = np.asarray(lines, dtype=np.int64)
        results: list[SimulatedMisses] = []
        current = lines
        for cache in self.levels:
            mask = cache.miss_mask(current)
            results.append(
                SimulatedMisses(accesses=int(current.size), misses=int(mask.sum()))
            )
            current = current[mask]
        return results

    def simulate_tiled(self, tiles) -> list[SimulatedMisses]:
        """Tile-at-a-time hierarchy simulation with carried state.

        Each tile's level-``i`` misses feed level ``i+1`` within the
        tile; concatenated across tiles that is exactly the monolithic
        level-to-level stream, so counts are bit-identical to
        :meth:`simulate` while only ever holding one tile.
        """
        states = [cache.tile_state() for cache in self.levels]
        for tile in tiles:
            current = np.asarray(tile, dtype=np.int64)
            for cache, state in zip(self.levels, states, strict=True):
                if current.size == 0:
                    break
                mask = cache.miss_mask_tile(current, state)
                current = current[mask]
        return [state.result for state in states]
