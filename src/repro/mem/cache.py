"""Trace-driven set-associative LRU cache simulation (exact path).

A faithful, if deliberately simple, cache model: physically indexed sets,
true-LRU replacement, allocate-on-miss for both loads and stores.  Used
to validate the analytic miss model and to power the
``exact_vs_analytical`` example; the paper-scale experiments use the
analytic path instead.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SimulatedMisses", "CacheSimulator", "HierarchySimulator"]


@dataclass(frozen=True)
class SimulatedMisses:
    """Result of simulating a stream through one cache (or hierarchy level)."""

    accesses: int
    misses: int

    @property
    def hits(self) -> int:
        """Number of accesses that hit."""
        return self.accesses - self.misses

    @property
    def miss_rate(self) -> float:
        """Misses per access (0 for an empty stream)."""
        return self.misses / self.accesses if self.accesses else 0.0


class CacheSimulator:
    """One set-associative LRU cache operating on line identifiers.

    Parameters
    ----------
    size_bytes:
        Total capacity.
    associativity:
        Ways per set; must divide the line count evenly.
    line_bytes:
        Line size (both paper machines use 64 bytes).
    """

    def __init__(self, size_bytes: int, associativity: int, line_bytes: int = 64) -> None:
        if size_bytes <= 0 or associativity < 1 or line_bytes <= 0:
            raise ValueError("cache geometry must be positive")
        n_lines = size_bytes // line_bytes
        if n_lines == 0 or n_lines % associativity != 0:
            raise ValueError(
                f"size {size_bytes} B / line {line_bytes} B not divisible into "
                f"{associativity}-way sets"
            )
        self.size_bytes = size_bytes
        self.associativity = associativity
        self.line_bytes = line_bytes
        self.n_sets = n_lines // associativity
        # Per set: list of tags, most-recently-used last.
        self._sets: list[list[int]] = [[] for _ in range(self.n_sets)]

    def reset(self) -> None:
        """Invalidate all contents."""
        self._sets = [[] for _ in range(self.n_sets)]

    def access(self, line: int) -> bool:
        """Access one line; return ``True`` on hit.  Misses allocate."""
        set_idx = line % self.n_sets
        tag = line // self.n_sets
        ways = self._sets[set_idx]
        try:
            ways.remove(tag)
        except ValueError:
            if len(ways) >= self.associativity:
                ways.pop(0)  # evict true-LRU
            ways.append(tag)
            return False
        ways.append(tag)  # move to MRU
        return True

    def simulate(self, lines: np.ndarray) -> SimulatedMisses:
        """Run a whole stream; returns aggregate counts (cold start)."""
        self.reset()
        misses = 0
        for line in np.asarray(lines, dtype=np.int64):
            if not self.access(int(line)):
                misses += 1
        return SimulatedMisses(accesses=int(len(lines)), misses=misses)

    def miss_mask(self, lines: np.ndarray) -> np.ndarray:
        """Per-access miss flags for a stream (cold start)."""
        self.reset()
        lines = np.asarray(lines, dtype=np.int64)
        mask = np.zeros(lines.size, dtype=bool)
        for i, line in enumerate(lines):
            mask[i] = not self.access(int(line))
        return mask


class HierarchySimulator:
    """An inclusive multi-level hierarchy: misses of level i feed level i+1.

    Mirrors the two levels the paper reports (L1D and L2 data misses),
    plus optionally the shared L3 for stall modelling.
    """

    def __init__(self, levels: list[CacheSimulator]) -> None:
        if not levels:
            raise ValueError("hierarchy needs at least one level")
        self.levels = levels

    def simulate(self, lines: np.ndarray) -> list[SimulatedMisses]:
        """Run a stream through every level; returns per-level counts."""
        for cache in self.levels:
            cache.reset()
        lines = np.asarray(lines, dtype=np.int64)
        results: list[SimulatedMisses] = []
        current = lines
        for cache in self.levels:
            mask = cache.miss_mask(current)
            results.append(
                SimulatedMisses(accesses=int(current.size), misses=int(mask.sum()))
            )
            current = current[mask]
        return results
