"""Trace-driven set-associative LRU cache simulation (exact path).

A faithful, if deliberately simple, cache model: physically indexed sets,
true-LRU replacement, allocate-on-miss for both loads and stores.  Used
to validate the analytic miss model and to power the
``exact_vs_analytical`` example; the paper-scale experiments use the
analytic path instead.

The batched entry points (:meth:`CacheSimulator.simulate`,
:meth:`CacheSimulator.miss_mask`) run a numpy lockstep simulation: the
stream is grouped by set, every set's recency stack is held as one row
of a ``(sets_touched, associativity)`` matrix, and a single Python-level
step advances *all* sets by one access.  The per-access Python loop
(list scans, ``remove``/``append``) only survives as the scalar
:meth:`CacheSimulator.access` API and as the fallback for degenerate
streams that concentrate on a few sets, where lockstep rounds would
be as long as the stream itself.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SimulatedMisses", "CacheSimulator", "HierarchySimulator"]


@dataclass(frozen=True)
class SimulatedMisses:
    """Result of simulating a stream through one cache (or hierarchy level)."""

    accesses: int
    misses: int

    @property
    def hits(self) -> int:
        """Number of accesses that hit."""
        return self.accesses - self.misses

    @property
    def miss_rate(self) -> float:
        """Misses per access (0 for an empty stream)."""
        return self.misses / self.accesses if self.accesses else 0.0


class CacheSimulator:
    """One set-associative LRU cache operating on line identifiers.

    Parameters
    ----------
    size_bytes:
        Total capacity.
    associativity:
        Ways per set; must divide the line count evenly.
    line_bytes:
        Line size (both paper machines use 64 bytes).
    """

    def __init__(self, size_bytes: int, associativity: int, line_bytes: int = 64) -> None:
        if size_bytes <= 0 or associativity < 1 or line_bytes <= 0:
            raise ValueError("cache geometry must be positive")
        n_lines = size_bytes // line_bytes
        if n_lines == 0 or n_lines % associativity != 0:
            raise ValueError(
                f"size {size_bytes} B / line {line_bytes} B not divisible into "
                f"{associativity}-way sets"
            )
        self.size_bytes = size_bytes
        self.associativity = associativity
        self.line_bytes = line_bytes
        self.n_sets = n_lines // associativity
        # Per set: list of tags, most-recently-used last.
        self._sets: list[list[int]] = [[] for _ in range(self.n_sets)]

    def reset(self) -> None:
        """Invalidate all contents."""
        self._sets = [[] for _ in range(self.n_sets)]

    def access(self, line: int) -> bool:
        """Access one line; return ``True`` on hit.  Misses allocate."""
        set_idx = line % self.n_sets
        tag = line // self.n_sets
        ways = self._sets[set_idx]
        try:
            ways.remove(tag)
        except ValueError:
            if len(ways) >= self.associativity:
                ways.pop(0)  # evict true-LRU
            ways.append(tag)
            return False
        ways.append(tag)  # move to MRU
        return True

    def simulate(self, lines: np.ndarray) -> SimulatedMisses:
        """Run a whole stream; returns aggregate counts (cold start)."""
        mask = self.miss_mask(lines)
        return SimulatedMisses(accesses=int(mask.size), misses=int(mask.sum()))

    def miss_mask(self, lines: np.ndarray) -> np.ndarray:
        """Per-access miss flags for a stream (cold start)."""
        self.reset()
        lines = np.asarray(lines, dtype=np.int64)
        if lines.size == 0:
            return np.zeros(0, dtype=bool)
        set_idx = lines % self.n_sets
        counts = np.bincount(set_idx, minlength=self.n_sets)
        longest_run = int(counts.max())
        # A lockstep round costs ~a dozen small numpy ops; it only wins
        # when each round retires many sets.  Streams concentrated on a
        # handful of sets (fully-associative caches, adversarial tests)
        # fall back to the scalar walk.
        if longest_run > max(64, lines.size // 4):
            mask = np.zeros(lines.size, dtype=bool)
            for i, line in enumerate(lines):
                mask[i] = not self.access(int(line))
            self.reset()
            return mask
        return self._miss_mask_lockstep(lines, set_idx, counts)

    def _miss_mask_lockstep(
        self, lines: np.ndarray, set_idx: np.ndarray, counts: np.ndarray
    ) -> np.ndarray:
        """Vectorised miss flags: advance every touched set in lockstep.

        Each touched set's accesses form one row of a padded tag
        matrix; the LRU stacks of all rows live in a ``(rows, ways)``
        matrix with MRU at column 0, and each lockstep step consumes
        one access per row with pure array ops.  Exactly equivalent to
        the scalar walk (true LRU, allocate-on-miss, cold start).
        """
        ways_n = self.associativity
        tags = lines // self.n_sets
        order = np.argsort(set_idx, kind="stable")
        touched = np.flatnonzero(counts)
        run_lengths = counts[touched]
        starts = np.zeros(touched.size, dtype=np.int64)
        np.cumsum(run_lengths[:-1], out=starts[1:])
        rows = np.repeat(np.arange(touched.size), run_lengths)
        cols = np.arange(lines.size) - starts[rows]

        longest = int(run_lengths.max())
        padded = np.zeros((touched.size, longest), dtype=np.int64)
        padded[rows, cols] = tags[order]

        stacks = np.zeros((touched.size, ways_n), dtype=np.int64)
        occupied = np.zeros((touched.size, ways_n), dtype=bool)
        miss_sorted = np.zeros(lines.size, dtype=bool)
        way_range = np.arange(ways_n)
        for step in range(longest):
            active = run_lengths > step
            current = padded[:, step]
            match = occupied & (stacks == current[:, None])
            hit = match.any(axis=1)
            # Hit: rotate columns 0..w into 1..w and insert at MRU.
            # Miss: shift everything right (the LRU way at the last
            # column falls off — a no-op eviction while filling).
            # Inactive rows keep their state untouched (w = -1).
            w = np.where(hit, match.argmax(axis=1), ways_n - 1)
            w = np.where(active, w, -1)
            keep = way_range[None, :] > w[:, None]
            shifted = np.empty_like(stacks)
            shifted[:, 0] = current
            shifted[:, 1:] = stacks[:, :-1]
            shifted_occ = np.empty_like(occupied)
            shifted_occ[:, 0] = True
            shifted_occ[:, 1:] = occupied[:, :-1]
            stacks = np.where(keep, stacks, shifted)
            occupied = np.where(keep, occupied, shifted_occ)
            idx = starts[active] + step
            miss_sorted[idx] = ~hit[active]

        mask = np.zeros(lines.size, dtype=bool)
        mask[order] = miss_sorted
        return mask


class HierarchySimulator:
    """An inclusive multi-level hierarchy: misses of level i feed level i+1.

    Mirrors the two levels the paper reports (L1D and L2 data misses),
    plus optionally the shared L3 for stall modelling.
    """

    def __init__(self, levels: list[CacheSimulator]) -> None:
        if not levels:
            raise ValueError("hierarchy needs at least one level")
        self.levels = levels

    def simulate(self, lines: np.ndarray) -> list[SimulatedMisses]:
        """Run a stream through every level; returns per-level counts."""
        for cache in self.levels:
            cache.reset()
        lines = np.asarray(lines, dtype=np.int64)
        results: list[SimulatedMisses] = []
        current = lines
        for cache in self.levels:
            mask = cache.miss_mask(current)
            results.append(
                SimulatedMisses(accesses=int(current.size), misses=int(mask.sum()))
            )
            current = current[mask]
        return results
