"""Analytic LRU-stack Distance Vectors (LDVs).

The BarrierPoint tool derives, for every barrier point, a histogram of
LRU stack distances over logarithmic bins.  The analytic path builds the
same histogram directly from a block's :class:`~repro.ir.memory.MemoryPattern`
without materialising an address stream, using a small set of
*characteristic distances* per pattern kind.

The decomposition is shared with the cache-miss model
(:mod:`repro.mem.hierarchy`), so LDV signatures and miss counts are
always mutually consistent — exactly the property the methodology relies
on when it clusters on LDVs and then validates with cache-miss counters.

Binning: bin 0 holds distances ``< 1`` (immediate reuse), bin ``i``
holds ``[2**(i-1), 2**i)`` lines, and the final bin collects cold
accesses (infinite distance).  28 bins cover distances up to 2**26 lines
(4 GiB of 64-byte lines), comfortably above the paper's largest 385 MiB
problem size.
"""

from __future__ import annotations

import numpy as np

from repro.ir.memory import MemoryPattern, PatternKind

__all__ = [
    "N_DISTANCE_BINS",
    "LDV_COLD_BIN",
    "bin_of_distance",
    "distance_bin_centers",
    "characteristic_distances",
    "hot_distances",
    "pattern_ldv_rows",
]

N_DISTANCE_BINS = 28
LDV_COLD_BIN = N_DISTANCE_BINS - 1
_MAX_FINITE_BIN = N_DISTANCE_BINS - 2


def bin_of_distance(distance: np.ndarray) -> np.ndarray:
    """Map stack distances (in lines) to LDV bin indices (vectorised)."""
    d = np.asarray(distance, dtype=float)
    with np.errstate(divide="ignore"):
        bins = np.where(d < 1.0, 0, np.floor(np.log2(np.maximum(d, 1.0))).astype(int) + 1)
    return np.minimum(bins, _MAX_FINITE_BIN).astype(np.int64)


def distance_bin_centers() -> np.ndarray:
    """Representative distance per bin (geometric centre; cold = inf)."""
    centers = np.empty(N_DISTANCE_BINS, dtype=float)
    centers[0] = 0.0
    for i in range(1, _MAX_FINITE_BIN + 1):
        centers[i] = 2.0 ** (i - 1) * 1.5
    centers[LDV_COLD_BIN] = np.inf
    return centers


#: Cold-population decomposition per pattern kind:
#: ``[(weight, distance_factor_fn), ...]`` where the factor function maps
#: a footprint (in lines) to a characteristic stack distance.
_COLD_COMPONENTS: dict[PatternKind, tuple[tuple[float, float], ...]] = {
    # (weight, footprint multiplier) pairs; weights sum to 1.
    PatternKind.STREAM: ((1.0, 1.0),),
    PatternKind.STRIDED: ((0.15, 0.25), (0.85, 1.0)),
    PatternKind.STENCIL: ((0.78, -1.0), (0.22, 1.0)),  # -1.0 → sqrt scaling
    PatternKind.RANDOM: ((0.15, 0.25), (0.35, 0.5), (0.5, 1.0)),
    PatternKind.GATHER: ((0.3, 0.125), (0.2, 0.5), (0.5, 1.0)),
    PatternKind.POINTER_CHASE: ((0.1, 0.5), (0.9, 1.0)),
}

#: Stencil near-reuse: neighbours re-touch lines about one grid row away;
#: a row of an F-line working set is ~sqrt(F) lines, widened by a factor.
_STENCIL_ROW_FACTOR = 2.0


def characteristic_distances(
    kind: PatternKind, footprint_lines: np.ndarray
) -> list[tuple[float, np.ndarray]]:
    """Cold-population (non-hot) reuse decomposition of a pattern kind.

    Parameters
    ----------
    kind:
        Pattern kind.
    footprint_lines:
        Per-thread footprint in lines; any numpy shape (vectorised).

    Returns
    -------
    list of (weight, distances)
        Weights sum to 1; ``distances`` broadcasts with the input.
    """
    fp = np.maximum(np.asarray(footprint_lines, dtype=float), 1.0)
    components: list[tuple[float, np.ndarray]] = []
    for weight, factor in _COLD_COMPONENTS[kind]:
        if factor < 0:  # sqrt scaling (stencil row reuse)
            distance = np.minimum(_STENCIL_ROW_FACTOR * np.sqrt(fp), fp)
        else:
            distance = factor * fp
        components.append((weight, np.maximum(distance, 1.0)))
    return components


def hot_distances(hot_lines: float) -> list[tuple[float, float]]:
    """Hot-set reuse decomposition: tight reuses inside the hot set."""
    hot = max(float(hot_lines), 1.0)
    return [(0.6, max(hot * 0.75, 1.0)), (0.4, max(hot * 0.25, 1.0))]


def pattern_ldv_rows(
    pattern: MemoryPattern,
    threads: int,
    footprint_scale: np.ndarray,
    hot_scale: np.ndarray,
) -> np.ndarray:
    """Per-instance LDV probability rows for one block's accesses.

    Parameters
    ----------
    pattern:
        The block's memory pattern.
    threads:
        Team width (the footprint is divided per thread).
    footprint_scale / hot_scale:
        ``(n_instances,)`` drift multipliers from the trace.

    Returns
    -------
    numpy.ndarray
        ``(n_instances, N_DISTANCE_BINS)`` rows, each summing to 1: the
        probability that one access of this block lands in each distance
        bin.
    """
    footprint_scale = np.asarray(footprint_scale, dtype=float)
    hot_scale = np.asarray(hot_scale, dtype=float)
    n_inst = footprint_scale.shape[0]

    fp = np.asarray(
        pattern.per_thread_footprint_lines(threads, scale=1.0) * footprint_scale
    )
    hot_frac = np.clip(pattern.hot_fraction * hot_scale, 0.0, 1.0)

    # One (component, instance) bin/weight pair per scattered add, then a
    # single weighted bincount over flattened (instance, bin) indices.
    # Components are laid out in the same order the per-component
    # ``np.add.at`` loop used, and bincount accumulates its input
    # sequentially, so the float additions happen in the identical order
    # — the rows are bit-identical to the scalar assembly's.
    bins_per_component: list[np.ndarray] = []
    weights_per_component: list[np.ndarray] = []
    for weight, distance in hot_distances(pattern.hot_lines):
        bins_per_component.append(bin_of_distance(np.full(n_inst, distance)))
        weights_per_component.append(weight * hot_frac)
    for weight, distances in characteristic_distances(pattern.kind, fp):
        bins_per_component.append(bin_of_distance(np.broadcast_to(distances, (n_inst,))))
        weights_per_component.append(weight * (1.0 - hot_frac))

    inst_idx = np.arange(n_inst, dtype=np.int64)
    flat = np.concatenate(
        [inst_idx * N_DISTANCE_BINS + bins for bins in bins_per_component]
    )
    weights = np.concatenate(
        [np.broadcast_to(w, (n_inst,)) for w in weights_per_component]
    )
    rows = np.bincount(flat, weights=weights, minlength=n_inst * N_DISTANCE_BINS)
    return rows.reshape(n_inst, N_DISTANCE_BINS)
