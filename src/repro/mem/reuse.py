"""Exact LRU stack (reuse) distance computation.

The LRU stack distance of an access is the number of *distinct* cache
lines touched since the previous access to the same line; cold (first)
accesses have infinite distance.  An access to a fully-associative LRU
cache of ``C`` lines hits iff its stack distance is ``< C`` — this is the
classic property that lets BarrierPoint's LDVs characterise memory
behaviour independently of any particular cache.

The implementation is the standard Fenwick-tree (binary indexed tree)
formulation of Bennett & Kruskal / Olken: maintain a 0/1 marker per time
step for "this position is the most recent access to its line"; the
distance of an access at time ``i`` whose line was last touched at time
``j`` is the number of markers strictly between ``j`` and ``i``.
Complexity is O(N log N) for a stream of N accesses.
"""

from __future__ import annotations

import numpy as np

__all__ = ["reuse_distances", "reuse_histogram"]

#: Sentinel distance for cold (first-touch) accesses.
COLD = -1


class _Fenwick:
    """Minimal Fenwick tree over ``n`` positions (1-indexed internally)."""

    def __init__(self, n: int) -> None:
        self._tree = np.zeros(n + 1, dtype=np.int64)

    def add(self, index: int, delta: int) -> None:
        """Add ``delta`` at 0-based ``index``."""
        i = index + 1
        tree = self._tree
        while i < tree.size:
            tree[i] += delta
            i += i & (-i)

    def prefix_sum(self, index: int) -> int:
        """Sum of entries at 0-based positions ``0..index`` inclusive."""
        i = index + 1
        total = 0
        tree = self._tree
        while i > 0:
            total += int(tree[i])
            i -= i & (-i)
        return total


def reuse_distances(lines: np.ndarray) -> np.ndarray:
    """Exact LRU stack distance of every access in a line-address stream.

    Parameters
    ----------
    lines:
        1-D integer array of cache-line identifiers, in access order.

    Returns
    -------
    numpy.ndarray
        ``int64`` array of the same length; cold accesses are ``-1``.
    """
    lines = np.asarray(lines)
    if lines.ndim != 1:
        raise ValueError(f"lines must be 1-D, got shape {lines.shape}")
    n = lines.size
    distances = np.empty(n, dtype=np.int64)
    tree = _Fenwick(n)
    last_seen: dict[int, int] = {}

    for i in range(n):
        line = int(lines[i])
        prev = last_seen.get(line)
        if prev is None:
            distances[i] = COLD
        else:
            # Markers strictly between prev and i = distinct lines touched.
            distances[i] = tree.prefix_sum(i - 1) - tree.prefix_sum(prev)
            tree.add(prev, -1)
        tree.add(i, +1)
        last_seen[line] = i
    return distances


def reuse_histogram(distances: np.ndarray, n_bins: int) -> np.ndarray:
    """Bin exact distances into the library's logarithmic LDV bins.

    Parameters
    ----------
    distances:
        Output of :func:`reuse_distances` (cold accesses ``-1``).
    n_bins:
        Number of LDV bins, normally
        :data:`repro.mem.ldv.N_DISTANCE_BINS`; the last bin collects cold
        accesses.

    Returns
    -------
    numpy.ndarray
        ``(n_bins,)`` float histogram of access counts.
    """
    from repro.mem.ldv import bin_of_distance

    distances = np.asarray(distances)
    hist = np.zeros(n_bins, dtype=float)
    cold = distances < 0
    hist[n_bins - 1] += float(np.count_nonzero(cold))
    warm = distances[~cold]
    if warm.size:
        bins = bin_of_distance(warm.astype(float))
        bins = np.minimum(bins, n_bins - 1)
        np.add.at(hist, bins, 1.0)
    return hist
