"""Exact LRU stack (reuse) distance computation.

The LRU stack distance of an access is the number of *distinct* cache
lines touched since the previous access to the same line; cold (first)
accesses have infinite distance.  An access to a fully-associative LRU
cache of ``C`` lines hits iff its stack distance is ``< C`` — this is the
classic property that lets BarrierPoint's LDVs characterise memory
behaviour independently of any particular cache.

Two implementations, bit-identical by construction and by test:

* :func:`reuse_distances_fenwick` — the standard Fenwick-tree (binary
  indexed tree) formulation of Bennett & Kruskal / Olken: maintain a 0/1
  marker per time step for "this position is the most recent access to
  its line"; the distance of an access at time ``i`` whose line was last
  touched at time ``j`` is the number of markers strictly between ``j``
  and ``i``.  O(N log N) — but every one of those operations is a
  Python-interpreter step, the per-access pattern the Pin-tool
  literature moved off decades ago.  Kept as the golden oracle.

* :func:`reuse_distances_vectorised` (the default behind
  :func:`reuse_distances`) — an argsort/merge-counting formulation.
  With ``prev[i]`` the previous access to ``i``'s line, the identity

      distance(i) = (i - prev[i] - 1) - #{q < i : prev[q] > prev[i]}

  holds because a position ``p`` in the open window ``(prev[i], i)``
  fails to contribute a *distinct* line exactly when its next access
  ``q = next[p]`` also lands in the window — and those ``q`` are
  precisely the warm accesses before ``i`` whose own ``prev`` lies
  inside the window.  The correction term is a per-element
  previous-greater count over the warm ``prev`` sequence — an inversion
  count, computed by a bottom-up mergesort whose per-level merge is one
  ``np.lexsort`` over (run id, value): O(N log² N) work but ~log N
  vectorised passes instead of N interpreted steps.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "reuse_distances",
    "reuse_distances_fenwick",
    "reuse_distances_vectorised",
    "reuse_histogram",
]

#: Sentinel distance for cold (first-touch) accesses.
COLD = -1


class _Fenwick:
    """Minimal Fenwick tree over ``n`` positions (1-indexed internally)."""

    def __init__(self, n: int) -> None:
        self._tree = np.zeros(n + 1, dtype=np.int64)

    def add(self, index: int, delta: int) -> None:
        """Add ``delta`` at 0-based ``index``."""
        i = index + 1
        tree = self._tree
        while i < tree.size:
            tree[i] += delta
            i += i & (-i)

    def prefix_sum(self, index: int) -> int:
        """Sum of entries at 0-based positions ``0..index`` inclusive."""
        i = index + 1
        total = 0
        tree = self._tree
        while i > 0:
            total += int(tree[i])
            i -= i & (-i)
        return total


def _check_stream(lines: np.ndarray) -> np.ndarray:
    lines = np.asarray(lines)
    if lines.ndim != 1:
        raise ValueError(f"lines must be 1-D, got shape {lines.shape}")
    return lines


def reuse_distances_fenwick(lines: np.ndarray) -> np.ndarray:
    """Golden-oracle scalar implementation (see module docstring)."""
    lines = _check_stream(lines)
    n = lines.size
    distances = np.empty(n, dtype=np.int64)
    tree = _Fenwick(n)
    last_seen: dict[int, int] = {}

    for i in range(n):
        line = int(lines[i])
        prev = last_seen.get(line)
        if prev is None:
            distances[i] = COLD
        else:
            # Markers strictly between prev and i = distinct lines touched.
            distances[i] = tree.prefix_sum(i - 1) - tree.prefix_sum(prev)
            tree.add(prev, -1)
        tree.add(i, +1)
        last_seen[line] = i
    return distances


def _previous_occurrence(lines: np.ndarray) -> np.ndarray:
    """``prev[i]`` = index of the last earlier access to ``lines[i]``'s
    line, or -1 for a first touch (vectorised via one grouping argsort)."""
    n = lines.size
    order = np.lexsort((np.arange(n), lines))  # group by line, time ascending
    grouped = lines[order]
    prev = np.full(n, -1, dtype=np.int64)
    same_line = grouped[1:] == grouped[:-1]
    prev[order[1:][same_line]] = order[:-1][same_line]
    return prev


def _count_previous_greater(values: np.ndarray) -> np.ndarray:
    """``c[t]`` = #{s < t : values[s] > values[t]} for each position.

    Bottom-up merge counting: at each level, elements are (virtually)
    merged in runs of ``2 * width`` by one stable ``np.lexsort`` on
    (run id, value); a right-half element preceded by ``L`` left-half
    elements in the merged order has exactly ``left_size - L`` greater
    left-half elements — stability breaks value ties in favour of the
    left half, keeping the count strict.
    """
    n = values.size
    counts = np.zeros(n, dtype=np.int64)
    if n < 2:
        return counts
    index = np.arange(n)
    width = 1
    while width < n:
        run = index // (2 * width)
        in_right = (index // width) % 2 == 1
        order = np.lexsort((values, run))
        run_sorted = run[order]
        right_sorted = in_right[order]

        first_in_run = np.empty(n, dtype=bool)
        first_in_run[0] = True
        first_in_run[1:] = run_sorted[1:] != run_sorted[:-1]
        run_start = np.maximum.accumulate(np.where(first_in_run, index, 0))
        pos_in_merged = index - run_start

        cum_right = np.cumsum(right_sorted)
        right_before_run = np.maximum.accumulate(
            np.where(first_in_run, cum_right - right_sorted, 0)
        )
        pos_in_right = cum_right - right_sorted - right_before_run

        left_size = np.minimum(width, n - run_sorted * 2 * width)
        left_before = pos_in_merged - pos_in_right
        right_mask = right_sorted
        counts[order[right_mask]] += (left_size - left_before)[right_mask]
        width *= 2
    return counts


def reuse_distances_vectorised(lines: np.ndarray) -> np.ndarray:
    """Vectorised exact stack distances (see module docstring)."""
    lines = _check_stream(lines)
    n = lines.size
    distances = np.full(n, COLD, dtype=np.int64)
    if n == 0:
        return distances
    prev = _previous_occurrence(lines)
    warm = prev >= 0
    if not warm.any():
        return distances
    warm_idx = np.flatnonzero(warm)
    warm_prev = prev[warm_idx]
    # Each position is ``prev`` of at most one access, so the values are
    # distinct and the previous-greater count is tie-free.
    corrections = _count_previous_greater(warm_prev)
    distances[warm_idx] = warm_idx - warm_prev - 1 - corrections
    return distances


def reuse_distances(lines: np.ndarray) -> np.ndarray:
    """Exact LRU stack distance of every access in a line-address stream.

    Parameters
    ----------
    lines:
        1-D integer array of cache-line identifiers, in access order.

    Returns
    -------
    numpy.ndarray
        ``int64`` array of the same length; cold accesses are ``-1``.
    """
    return reuse_distances_vectorised(lines)


def reuse_histogram(distances: np.ndarray, n_bins: int) -> np.ndarray:
    """Bin exact distances into the library's logarithmic LDV bins.

    Parameters
    ----------
    distances:
        Output of :func:`reuse_distances` (cold accesses ``-1``).
    n_bins:
        Number of LDV bins, normally
        :data:`repro.mem.ldv.N_DISTANCE_BINS`; the last bin collects cold
        accesses.

    Returns
    -------
    numpy.ndarray
        ``(n_bins,)`` float histogram of access counts.
    """
    from repro.mem.ldv import bin_of_distance

    distances = np.asarray(distances)
    hist = np.zeros(n_bins, dtype=float)
    cold = distances < 0
    hist[n_bins - 1] += float(np.count_nonzero(cold))
    warm = distances[~cold]
    if warm.size:
        bins = bin_of_distance(warm.astype(float))
        bins = np.minimum(bins, n_bins - 1)
        np.add.at(hist, bins, 1.0)
    return hist
