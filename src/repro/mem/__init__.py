"""Memory-behaviour substrate.

BarrierPoint signatures pair BBVs with **LRU-stack Distance Vectors**
(LDVs), and the paper's error metrics include L1D and L2D cache misses,
so the memory system is a first-class substrate here.  Two paths exist:

* **Exact path** — :mod:`repro.mem.streams` expands a
  :class:`~repro.ir.memory.MemoryPattern` into a concrete address
  stream; :mod:`repro.mem.reuse` computes exact LRU stack distances
  (Fenwick-tree algorithm, O(N log N)); :mod:`repro.mem.cache` is a
  trace-driven set-associative LRU cache simulator.  This path is used
  by the tests and examples to validate the analytic path.
* **Analytic path** — :mod:`repro.mem.ldv` derives LDV histograms and
  :mod:`repro.mem.hierarchy` derives per-level miss fractions directly
  from the pattern parameters.  This is what makes simulating LULESH's
  9,840 barrier points tractable at paper scale.

Both paths share one source of truth for a pattern's reuse structure:
:func:`repro.mem.ldv.characteristic_distances`.
"""

from repro.mem.cache import (
    CacheSimulator,
    CacheTileState,
    HierarchySimulator,
    SimulatedMisses,
)
from repro.mem.hierarchy import (
    effective_capacity_lines,
    miss_fraction,
    miss_probability,
    misses_from_ldv,
)
from repro.mem.ldv import (
    LDV_COLD_BIN,
    N_DISTANCE_BINS,
    bin_of_distance,
    characteristic_distances,
    distance_bin_centers,
    pattern_ldv_rows,
)
from repro.mem.reuse import reuse_distances, reuse_histogram
from repro.mem.streaming import (
    ReuseStreamState,
    iter_array_tiles,
    reuse_distances_streamed,
    reuse_histogram_streamed,
)
from repro.mem.streams import generate_stream

__all__ = [
    "reuse_distances",
    "reuse_histogram",
    "reuse_distances_streamed",
    "reuse_histogram_streamed",
    "ReuseStreamState",
    "iter_array_tiles",
    "generate_stream",
    "CacheSimulator",
    "CacheTileState",
    "HierarchySimulator",
    "SimulatedMisses",
    "N_DISTANCE_BINS",
    "LDV_COLD_BIN",
    "bin_of_distance",
    "distance_bin_centers",
    "characteristic_distances",
    "pattern_ldv_rows",
    "miss_probability",
    "miss_fraction",
    "misses_from_ldv",
    "effective_capacity_lines",
]
