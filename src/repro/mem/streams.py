"""Concrete address-stream generation (exact path).

Expands a :class:`~repro.ir.memory.MemoryPattern` into a stream of cache
line identifiers with the pattern's qualitative order.  The exact reuse
engine (:mod:`repro.mem.reuse`) and cache simulator
(:mod:`repro.mem.cache`) consume these streams; the tests compare the
results against the analytic LDV/miss models to keep both paths honest.

Address space layout per stream: lines ``[0, hot_lines)`` form the hot
set; lines ``[hot_lines, hot_lines + footprint_lines)`` form the cold
footprint.  Hot accesses are interleaved via a Bernoulli draw with the
pattern's ``hot_fraction``.
"""

from __future__ import annotations

import numpy as np

from repro.ir.memory import MemoryPattern, PatternKind

__all__ = ["generate_stream", "iter_stream_tiles", "GEN_BLOCK"]

_STRIDE_LINES = 7  # co-prime with power-of-two footprints → full coverage

#: Fixed generation granule of :func:`iter_stream_tiles`.  The tiled
#: generator reseeds a child generator per granule, so the stream is a
#: pure function of (pattern, n_accesses, seed) — **independent of the
#: consumer's tile size**, which therefore stays an execution-only knob
#: that can never change a computed number.
GEN_BLOCK = 1 << 16


def _cold_indices(
    kind: PatternKind, n: int, footprint: int, gen: np.random.Generator
) -> np.ndarray:
    """Cold-population line offsets (within the footprint) per kind."""
    positions = np.arange(n, dtype=np.int64)
    if kind is PatternKind.STREAM:
        return positions % footprint
    if kind is PatternKind.STRIDED:
        return (positions * _STRIDE_LINES) % footprint
    if kind is PatternKind.STENCIL:
        # A moving front touching {0, +1, -1, +row, -row} around a base
        # that advances every five accesses.
        row = max(int(np.sqrt(footprint)), 1)
        offsets = np.array([0, 1, -1, row, -row], dtype=np.int64)
        base = positions // 5
        return (base + offsets[positions % 5]) % footprint
    if kind is PatternKind.RANDOM:
        return gen.integers(0, footprint, size=n, dtype=np.int64)
    if kind is PatternKind.GATHER:
        sequential = positions % footprint
        random = gen.integers(0, footprint, size=n, dtype=np.int64)
        take_random = gen.random(n) < 0.5
        return np.where(take_random, random, sequential)
    if kind is PatternKind.POINTER_CHASE:
        # The chase walks nodes 0, 1, 2, ... through a fixed random
        # permutation, so the whole walk is one gather: perm[i mod F].
        perm = gen.permutation(footprint).astype(np.int64, copy=False)
        return perm[positions % footprint]
    raise ValueError(f"unhandled pattern kind {kind!r}")


def generate_stream(
    pattern: MemoryPattern,
    n_accesses: int,
    gen: np.random.Generator,
    threads: int = 1,
    footprint_scale: float = 1.0,
    hot_scale: float = 1.0,
) -> np.ndarray:
    """Generate a cache-line access stream realising a memory pattern.

    Parameters
    ----------
    pattern:
        The generative description.
    n_accesses:
        Stream length.
    gen:
        Random generator (hot/cold interleave and random patterns).
    threads:
        Team width used to scale the per-thread footprint, matching the
        analytic path's :meth:`MemoryPattern.per_thread_footprint_lines`.
    footprint_scale / hot_scale:
        Drift multipliers, as carried by a trace instance.

    Returns
    -------
    numpy.ndarray
        ``(n_accesses,)`` int64 line identifiers.
    """
    if n_accesses < 0:
        raise ValueError(f"n_accesses must be non-negative, got {n_accesses}")
    hot_lines = max(int(round(pattern.hot_lines)), 1)
    footprint = max(
        int(round(pattern.per_thread_footprint_lines(threads, scale=footprint_scale))),
        1,
    )
    hot_fraction = float(np.clip(pattern.hot_fraction * hot_scale, 0.0, 1.0))

    is_hot = gen.random(n_accesses) < hot_fraction
    n_hot = int(np.count_nonzero(is_hot))
    n_cold = n_accesses - n_hot

    # Hot accesses sweep the hot set cyclically (tight reuse distances).
    hot_stream = np.arange(n_hot, dtype=np.int64) % hot_lines
    cold_stream = hot_lines + _cold_indices(pattern.kind, n_cold, footprint, gen)

    out = np.empty(n_accesses, dtype=np.int64)
    out[is_hot] = hot_stream
    out[~is_hot] = cold_stream
    return out


def _cold_block(
    kind: PatternKind,
    positions: np.ndarray,
    footprint: int,
    gen: np.random.Generator,
    perm: np.ndarray | None,
) -> np.ndarray:
    """One granule of cold-population offsets at *global* cold positions.

    Deterministic kinds index by global position (so the sweep/stencil
    front carries across granules); stochastic kinds draw from the
    granule's child generator.
    """
    n = positions.size
    if kind is PatternKind.STREAM:
        return positions % footprint
    if kind is PatternKind.STRIDED:
        return (positions * _STRIDE_LINES) % footprint
    if kind is PatternKind.STENCIL:
        row = max(int(np.sqrt(footprint)), 1)
        offsets = np.array([0, 1, -1, row, -row], dtype=np.int64)
        base = positions // 5
        return (base + offsets[positions % 5]) % footprint
    if kind is PatternKind.RANDOM:
        return gen.integers(0, footprint, size=n, dtype=np.int64)
    if kind is PatternKind.GATHER:
        sequential = positions % footprint
        random = gen.integers(0, footprint, size=n, dtype=np.int64)
        take_random = gen.random(n) < 0.5
        return np.where(take_random, random, sequential)
    if kind is PatternKind.POINTER_CHASE:
        return perm[positions % footprint]
    raise ValueError(f"unhandled pattern kind {kind!r}")


def iter_stream_tiles(
    pattern: MemoryPattern,
    n_accesses: int,
    seed: int,
    tile_size: int,
    threads: int = 1,
    footprint_scale: float = 1.0,
    hot_scale: float = 1.0,
):
    """Generate an access stream tile by tile in bounded memory.

    The out-of-core counterpart of :func:`generate_stream`: yields
    ``int64`` line tiles of ``tile_size`` accesses (last tile short)
    whose concatenation is a deterministic function of
    ``(pattern, n_accesses, seed, threads, scales)`` only.  Generation
    happens in fixed :data:`GEN_BLOCK` granules, each from a child
    generator seeded ``[seed, granule_index]`` with hot/cold sweep
    counters carried across granules — so two consumers with different
    ``tile_size`` see bit-identical streams, and peak memory is
    ``O(tile_size + GEN_BLOCK)`` regardless of ``n_accesses``.

    The stream is *not* the same realisation :func:`generate_stream`
    draws for one shared generator (the monolithic path consumes its
    RNG in one pass); equivalence of the two paths is asserted where it
    matters — the streaming *kernels* are bit-identical to the
    monolithic kernels on any common stream.
    """
    if n_accesses < 0:
        raise ValueError(f"n_accesses must be non-negative, got {n_accesses}")
    if tile_size < 1:
        raise ValueError(f"tile_size must be positive, got {tile_size}")
    hot_lines = max(int(round(pattern.hot_lines)), 1)
    footprint = max(
        int(round(pattern.per_thread_footprint_lines(threads, scale=footprint_scale))),
        1,
    )
    hot_fraction = float(np.clip(pattern.hot_fraction * hot_scale, 0.0, 1.0))
    perm = None
    if pattern.kind is PatternKind.POINTER_CHASE:
        # One fixed permutation for the whole stream, like the
        # monolithic path; drawn from a reserved child seed so granule
        # generators stay aligned with their granule index.
        perm = (
            np.random.default_rng([seed, 0x9E3779B9])
            .permutation(footprint)
            .astype(np.int64, copy=False)
        )

    buffer: list[np.ndarray] = []
    buffered = 0
    hot_seen = 0
    cold_seen = 0
    for granule in range(0, n_accesses, GEN_BLOCK):
        nb = min(GEN_BLOCK, n_accesses - granule)
        gen = np.random.default_rng([seed, granule // GEN_BLOCK])
        is_hot = gen.random(nb) < hot_fraction
        n_hot = int(np.count_nonzero(is_hot))
        n_cold = nb - n_hot
        hot_stream = (hot_seen + np.arange(n_hot, dtype=np.int64)) % hot_lines
        cold_positions = cold_seen + np.arange(n_cold, dtype=np.int64)
        cold_stream = hot_lines + _cold_block(
            pattern.kind, cold_positions, footprint, gen, perm
        )
        hot_seen += n_hot
        cold_seen += n_cold
        block = np.empty(nb, dtype=np.int64)
        block[is_hot] = hot_stream
        block[~is_hot] = cold_stream
        buffer.append(block)
        buffered += nb
        while buffered >= tile_size:
            chunk = np.concatenate(buffer) if len(buffer) > 1 else buffer[0]
            yield chunk[:tile_size]
            rest = chunk[tile_size:]
            buffer = [rest] if rest.size else []
            buffered = rest.size
    if buffered:
        yield np.concatenate(buffer) if len(buffer) > 1 else buffer[0]
