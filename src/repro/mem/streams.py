"""Concrete address-stream generation (exact path).

Expands a :class:`~repro.ir.memory.MemoryPattern` into a stream of cache
line identifiers with the pattern's qualitative order.  The exact reuse
engine (:mod:`repro.mem.reuse`) and cache simulator
(:mod:`repro.mem.cache`) consume these streams; the tests compare the
results against the analytic LDV/miss models to keep both paths honest.

Address space layout per stream: lines ``[0, hot_lines)`` form the hot
set; lines ``[hot_lines, hot_lines + footprint_lines)`` form the cold
footprint.  Hot accesses are interleaved via a Bernoulli draw with the
pattern's ``hot_fraction``.
"""

from __future__ import annotations

import numpy as np

from repro.ir.memory import MemoryPattern, PatternKind

__all__ = ["generate_stream"]

_STRIDE_LINES = 7  # co-prime with power-of-two footprints → full coverage


def _cold_indices(
    kind: PatternKind, n: int, footprint: int, gen: np.random.Generator
) -> np.ndarray:
    """Cold-population line offsets (within the footprint) per kind."""
    positions = np.arange(n, dtype=np.int64)
    if kind is PatternKind.STREAM:
        return positions % footprint
    if kind is PatternKind.STRIDED:
        return (positions * _STRIDE_LINES) % footprint
    if kind is PatternKind.STENCIL:
        # A moving front touching {0, +1, -1, +row, -row} around a base
        # that advances every five accesses.
        row = max(int(np.sqrt(footprint)), 1)
        offsets = np.array([0, 1, -1, row, -row], dtype=np.int64)
        base = positions // 5
        return (base + offsets[positions % 5]) % footprint
    if kind is PatternKind.RANDOM:
        return gen.integers(0, footprint, size=n, dtype=np.int64)
    if kind is PatternKind.GATHER:
        sequential = positions % footprint
        random = gen.integers(0, footprint, size=n, dtype=np.int64)
        take_random = gen.random(n) < 0.5
        return np.where(take_random, random, sequential)
    if kind is PatternKind.POINTER_CHASE:
        # The chase walks nodes 0, 1, 2, ... through a fixed random
        # permutation, so the whole walk is one gather: perm[i mod F].
        perm = gen.permutation(footprint).astype(np.int64, copy=False)
        return perm[positions % footprint]
    raise ValueError(f"unhandled pattern kind {kind!r}")


def generate_stream(
    pattern: MemoryPattern,
    n_accesses: int,
    gen: np.random.Generator,
    threads: int = 1,
    footprint_scale: float = 1.0,
    hot_scale: float = 1.0,
) -> np.ndarray:
    """Generate a cache-line access stream realising a memory pattern.

    Parameters
    ----------
    pattern:
        The generative description.
    n_accesses:
        Stream length.
    gen:
        Random generator (hot/cold interleave and random patterns).
    threads:
        Team width used to scale the per-thread footprint, matching the
        analytic path's :meth:`MemoryPattern.per_thread_footprint_lines`.
    footprint_scale / hot_scale:
        Drift multipliers, as carried by a trace instance.

    Returns
    -------
    numpy.ndarray
        ``(n_accesses,)`` int64 line identifiers.
    """
    if n_accesses < 0:
        raise ValueError(f"n_accesses must be non-negative, got {n_accesses}")
    hot_lines = max(int(round(pattern.hot_lines)), 1)
    footprint = max(
        int(round(pattern.per_thread_footprint_lines(threads, scale=footprint_scale))),
        1,
    )
    hot_fraction = float(np.clip(pattern.hot_fraction * hot_scale, 0.0, 1.0))

    is_hot = gen.random(n_accesses) < hot_fraction
    n_hot = int(np.count_nonzero(is_hot))
    n_cold = n_accesses - n_hot

    # Hot accesses sweep the hot set cyclically (tight reuse distances).
    hot_stream = np.arange(n_hot, dtype=np.int64) % hot_lines
    cold_stream = hot_lines + _cold_indices(pattern.kind, n_cold, footprint, gen)

    out = np.empty(n_accesses, dtype=np.int64)
    out[is_hot] = hot_stream
    out[~is_hot] = cold_stream
    return out
