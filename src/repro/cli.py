"""Command-line entry point: ``repro <experiment>``.

Regenerates any of the paper's tables/figures from the terminal::

    repro table1          # applications (Table I)
    repro table2          # machines (Table II)
    repro table3          # barrier points per app (Table III)
    repro table4          # 8-thread errors and speed-ups (Table IV)
    repro figure1         # MCB phase drift (Figure 1)
    repro figure2         # error grid behind Figures 2a-2g
    repro variability     # Section V-C variability/overhead
    repro limitations     # Section V-B applicability
    repro coalesce        # future work: barrier-point coalescing
    repro coretypes       # future work: in-order vs out-of-order
    repro list            # workload registry

``--quick`` shrinks the protocol (3 discovery runs, 5 repetitions) for a
fast look; the default reproduces the paper's 10 × 20 protocol.
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments import coalesce, coretypes, figure1, figure2, limitations
from repro.experiments import table1, table2, table3, table4, variability
from repro.experiments.config import ExperimentConfig

__all__ = ["main"]

_EXPERIMENTS = {
    "table1": table1.run,
    "table2": table2.run,
    "table3": table3.run,
    "table4": table4.run,
    "figure1": figure1.run,
    "figure2": figure2.run,
    "variability": variability.run,
    "limitations": limitations.run,
    "coalesce": coalesce.run,
    "coretypes": coretypes.run,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce tables/figures of the cross-architectural "
        "BarrierPoint paper (ISPASS 2017).",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(_EXPERIMENTS) + ["list"],
        help="which artefact to regenerate",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="use a reduced protocol (3 discovery runs, 5 repetitions)",
    )
    parser.add_argument(
        "--seed", type=int, default=2017, help="root random seed (default 2017)"
    )
    parser.add_argument(
        "--no-cache", action="store_true", help="disable the on-disk study cache"
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)

    if args.experiment == "list":
        from repro.workloads.registry import TABLE1_ORDER, create

        for name in TABLE1_ORDER:
            app = create(name)
            print(f"{app.name:12s} {app.description}")
        return 0

    if args.quick:
        config = ExperimentConfig(
            thread_counts=(1, 8),
            discovery_runs=3,
            repetitions=5,
            seed=args.seed,
            cache_dir="" if args.no_cache else ".repro-cache",
        )
    else:
        config = ExperimentConfig(
            seed=args.seed, cache_dir="" if args.no_cache else ".repro-cache"
        )

    result = _EXPERIMENTS[args.experiment](config)
    print(result.render())
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
