"""Command-line entry point: ``repro <experiment>``.

Regenerates any of the paper's tables/figures from the terminal::

    repro table1          # applications (Table I)
    repro table2          # machines (Table II)
    repro table3          # barrier points per app (Table III)
    repro table4          # 8-thread errors and speed-ups (Table IV)
    repro figure1         # MCB phase drift (Figure 1)
    repro figure2         # error grid behind Figures 2a-2g
    repro variability     # Section V-C variability/overhead
    repro limitations     # Section V-B applicability
    repro coalesce        # future work: barrier-point coalescing
    repro coretypes       # future work: in-order vs out-of-order
    repro scaling         # strong-scaling grid: threads x machines
    repro ranks           # distributed-memory grid: ranks x machines
    repro trace           # streamed exact traces (out-of-core tiles)
    repro all             # every artefact from one scheduled pass
    repro workloads       # registered workload plugins ('list' is an alias)
    repro machines        # registered machine plugins
    repro machines ingest # ingest a captured host (or '-' for live /sys)
    repro stages          # registered pipeline stages
    repro serve           # always-on artifact service (JSON over HTTP)
    repro client          # command-line client for a running daemon
    repro lint            # RPR invariant checker (static analysis)
    repro chaos           # seeded fault-injection run (resilience drill)

``--scale quick`` (or the ``--quick`` shorthand) shrinks the protocol
(3 discovery runs, 5 repetitions) for a fast look; the default
reproduces the paper's 10 × 20 protocol.  ``--jobs N`` fans independent
study cells out over N workers (``--backend`` picks serial/threads/
processes); results are bit-identical regardless of backend.  ``repro
all`` deduplicates cells shared between artefacts — Table III, Table IV
and Figure 2 reuse the same studies — and renders everything from a
single scheduled pass.
"""

from __future__ import annotations

import argparse
import sys

from repro.exec.backends import BACKEND_NAMES
from repro.exec.scheduler import StudyScheduler
from repro.experiments import (
    coalesce,
    coretypes,
    figure1,
    figure2,
    limitations,
    ranks,
    scaling,
    table1,
    table2,
    table3,
    table4,
    trace,
    variability,
)
from repro.experiments.config import SCALES, default_config

__all__ = ["main"]

#: Render order of ``repro all`` (the paper's artefact order).
_EXPERIMENTS = {
    "table1": table1,
    "table2": table2,
    "table3": table3,
    "table4": table4,
    "figure1": figure1,
    "figure2": figure2,
    "variability": variability,
    "limitations": limitations,
    "coalesce": coalesce,
    "coretypes": coretypes,
    "scaling": scaling,
    "ranks": ranks,
    "trace": trace,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce tables/figures of the cross-architectural "
        "BarrierPoint paper (ISPASS 2017).",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(_EXPERIMENTS) + ["all", "list", "workloads", "machines", "stages"],
        help="which artefact to regenerate ('all' renders every one); "
        "'workloads'/'machines'/'stages' list the registered plugins",
    )
    parser.add_argument(
        "--scale",
        choices=SCALES,
        default=None,
        help="protocol scale (default: $REPRO_SCALE, else 'full')",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="shorthand for --scale quick (3 discovery runs, 5 repetitions)",
    )
    parser.add_argument(
        "--seed", type=int, default=None, help="root random seed (default 2017)"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="study cells executed concurrently (default 1)",
    )
    parser.add_argument(
        "--backend",
        choices=sorted(BACKEND_NAMES),
        default=None,
        help="execution backend (default: processes when --jobs > 1)",
    )
    parser.add_argument(
        "--max-k",
        type=int,
        default=None,
        metavar="K",
        help="cap the SimPoint cluster sweep (default 20, minimum 2); "
        "thanks to stage-granular caching, changing this re-runs "
        "clustering onward while profile/signature payloads come from "
        "cache",
    )
    parser.add_argument(
        "--trace-tile-size",
        type=int,
        default=None,
        metavar="N",
        help="accesses per streamed-trace tile (default 1048576); "
        "execution-only — bounds the streaming kernels' peak memory "
        "without changing any computed number",
    )
    parser.add_argument(
        "--trace-accesses",
        type=int,
        default=None,
        metavar="N",
        help="accesses per streamed-trace cell (default: 10^7 at full "
        "scale, 200k at quick scale)",
    )
    parser.add_argument(
        "--machine-spec",
        action="append",
        default=None,
        metavar="PATH",
        dest="machine_specs",
        help="register an ingested machine spec file (repeatable; see "
        "'repro machines ingest --save')",
    )
    parser.add_argument(
        "--machines",
        default=None,
        metavar="NAME[,NAME...]",
        help="extra machine names appended to the scaling/ranks/trace "
        "grids (must be registered, e.g. via --machine-spec)",
    )
    parser.add_argument(
        "--no-cache", action="store_true", help="disable the on-disk study cache"
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="skip cells a crashed run already finished (consults the "
        "study checkpoint journal; cleared on full success)",
    )
    parser.add_argument(
        "--faults",
        default=None,
        metavar="SPEC",
        help="inject a seeded fault schedule, e.g. "
        "'seed=7,kill=0.3,torn=0.2' (keys: seed, kill, exc, torn, "
        "enospc, latency, latency_rate, max); results stay "
        "byte-identical to a fault-free run",
    )
    parser.add_argument(
        "--cell-retries",
        type=int,
        default=None,
        metavar="N",
        help="retries per failed cell before quarantine (default 2)",
    )
    parser.add_argument(
        "--cell-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-cell wall-clock budget; overrunning workers are "
        "killed and the cell retried (0 disables, the default)",
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="print scheduler statistics to stderr",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="print a per-stage wall-time / bytes-encoded / bytes-decoded "
        "table after the run (backed by the stage store's counters)",
    )
    return parser


def _config_from_args(args: argparse.Namespace):
    if args.quick and args.scale == "full":
        raise SystemExit("error: --quick conflicts with --scale full")
    scale = "quick" if args.quick else args.scale
    overrides: dict[str, object] = {"jobs": args.jobs, "backend": args.backend}
    if args.seed is not None:
        overrides["seed"] = args.seed
    if args.no_cache:
        overrides["cache_dir"] = ""
    if getattr(args, "trace_tile_size", None) is not None:
        if args.trace_tile_size < 1:
            raise SystemExit(
                f"error: --trace-tile-size must be >= 1, got {args.trace_tile_size}"
            )
        overrides["trace_tile_size"] = args.trace_tile_size
    if getattr(args, "trace_accesses", None) is not None:
        if args.trace_accesses < 0:
            raise SystemExit(
                f"error: --trace-accesses must be >= 0, got {args.trace_accesses}"
            )
        overrides["trace_accesses"] = args.trace_accesses
    if getattr(args, "machine_specs", None):
        overrides["machine_specs"] = tuple(args.machine_specs)
    if getattr(args, "machines", None):
        overrides["machines"] = tuple(
            name.strip() for name in args.machines.split(",") if name.strip()
        )
    if getattr(args, "resume", False):
        overrides["resume"] = True
    if getattr(args, "faults", None):
        from repro.exec.faults import FaultPlan

        try:
            FaultPlan.parse(args.faults)
        except ValueError as exc:
            raise SystemExit(f"error: {exc}")
        overrides["faults"] = args.faults
    if getattr(args, "cell_retries", None) is not None:
        if args.cell_retries < 0:
            raise SystemExit(
                f"error: --cell-retries must be >= 0, got {args.cell_retries}"
            )
        overrides["cell_retries"] = args.cell_retries
    if getattr(args, "cell_timeout", None) is not None:
        if args.cell_timeout < 0:
            raise SystemExit(
                f"error: --cell-timeout must be >= 0, got {args.cell_timeout}"
            )
        overrides["cell_timeout"] = args.cell_timeout
    config = default_config(scale, **overrides)
    if getattr(args, "max_k", None) is not None:
        from dataclasses import replace as _replace

        # Layer the cap on the *scale's* simpoint options rather than a
        # fresh SimPointOptions(): the scale may have picked e.g. a
        # different clustering algorithm, and --max-k must not silently
        # reset it.
        config = _replace(config, simpoint=_replace(config.simpoint, max_k=args.max_k))
    return config


def _print_registry(which: str) -> None:
    """List one plugin registry ('list' is the legacy workloads alias)."""
    from repro.api.registry import (
        machine_registry,
        stage_registry,
        workload_registry,
    )

    registry = {
        "list": workload_registry,
        "workloads": workload_registry,
        "machines": machine_registry,
        "stages": stage_registry,
    }[which]
    ordered = registry.names()
    if registry is workload_registry:
        # Preserve Table I order, then any third-party registrations.
        from repro.workloads.registry import TABLE1_ORDER

        ordered = TABLE1_ORDER + tuple(
            name for name in ordered if name not in TABLE1_ORDER
        )
    entries = [registry.entry(name) for name in ordered]
    width = max(len(entry.name) for entry in entries)
    for entry in entries:
        print(f"{entry.name:{width}s}  {entry.description}")


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    # The serve/client/lint subcommands have their own option namespaces
    # (ports, budgets, baselines...), so they dispatch before the
    # experiment parser.
    if argv and argv[0] in ("serve", "client"):
        from repro.serve.cli import client_main, serve_main

        runner = serve_main if argv[0] == "serve" else client_main
        return runner(argv[1:])
    if argv and argv[0] == "lint":
        from repro.lint.cli import lint_main

        return lint_main(argv[1:])
    if argv and argv[0] == "chaos":
        from repro.exec.chaos import chaos_main

        return chaos_main(argv[1:])
    if argv[:2] == ["machines", "ingest"]:
        from repro.hw.ingest.cli import ingest_main

        return ingest_main(argv[2:])

    args = _build_parser().parse_args(argv)

    if args.jobs < 1:
        print(f"error: --jobs must be >= 1, got {args.jobs}", file=sys.stderr)
        return 2

    if args.max_k is not None and args.max_k < 2:
        # SimPoint caps its k grid at max(n_points // 2, 1), so maxK = 1
        # silently degenerates to a single-cluster sweep: every barrier
        # point lands in one cluster and the "selection" is one
        # representative with a multiplier covering the whole region —
        # technically valid output, practically a confusing non-result.
        # Reject it up front instead.
        print(
            f"error: --max-k must be >= 2, got {args.max_k} (a one-cluster "
            "sweep selects a single representative for the whole region, "
            "which defeats the methodology)",
            file=sys.stderr,
        )
        return 2

    if args.experiment in ("list", "workloads", "machines", "stages"):
        _print_registry(args.experiment)
        return 0

    config = _config_from_args(args)

    if config.machine_specs or config.machines:
        # Fail fast on a bad spec path or a typo'd machine name before
        # any cell is scheduled; the executors re-register in workers.
        from repro.api.registry import machine_registry
        from repro.experiments.config import register_config_machines

        try:
            register_config_machines(config)
            for name in config.machines:
                machine_registry.get(name)
        except (OSError, ValueError, KeyError) as exc:
            # str(KeyError) wraps the name in quotes; str(OSError) keeps
            # the filename, which args[0] (the bare errno) would lose.
            message = exc.args[0] if isinstance(exc, KeyError) else exc
            print(f"error: {message}", file=sys.stderr)
            return 2

    scheduler = StudyScheduler(config)

    if args.experiment == "all":
        # One deduplicated scheduled pass over every artefact's cells,
        # then render each artefact from the shared results.
        requests = []
        for module in _EXPERIMENTS.values():
            if hasattr(module, "requests"):
                requests.extend(module.requests(config))
        scheduler.run(requests)
        renders = [
            module.run(config, scheduler=scheduler)
            if hasattr(module, "requests")
            else module.run(config)
            for module in _EXPERIMENTS.values()
        ]
        print("\n\n".join(result.render() for result in renders))
    else:
        module = _EXPERIMENTS[args.experiment]
        if hasattr(module, "requests"):
            result = module.run(config, scheduler=scheduler)
        else:
            result = module.run(config)
        print(result.render())

    if args.verbose or args.profile:
        from repro.exec.stagestore import stage_store_for

        # Worker-process counter deltas are merged back into this
        # process's store by the scheduler, so the stage-cache summary
        # and the profile table are accurate on every backend,
        # processes included.
        stats = stage_store_for(config).stats
        if args.verbose:
            print(f"[scheduler] {scheduler.stats.describe()}", file=sys.stderr)
            print(f"[stage-cache] {stats.describe()}", file=sys.stderr)
        if args.profile:
            print()
            print(stats.profile_table())
    # The command rendered everything it was asked for; a future
    # --resume should start fresh rather than trust stale progress.
    scheduler.checkpoint.clear()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
