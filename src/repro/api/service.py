"""Typed request/response models of the ``repro serve`` JSON API.

The serve daemon, the ``repro client`` CLI, the benchmark harness and
the tests all speak the same wire shapes; this module is the single
definition of them.  Everything is a frozen dataclass with explicit
``to_json``/``from_json`` methods — the wire format is plain JSON, the
typed layer exists so the five call sites cannot drift apart.

A :class:`CellSubmission` names one study cell the way the CLI does
(kind, app, machine, threads, ranks, protocol scale, stage overrides)
and lowers to the *same* :class:`~repro.exec.request.StudyRequest` the
batch experiments declare — which is what makes the service's dedup
digest identical to the scheduler's: a cell computed by ``repro all``
is a warm hit for a served client and vice versa.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

from repro.exec.request import StudyRequest

__all__ = [
    "SUBMISSION_KINDS",
    "CELL_STATES",
    "SubmissionError",
    "CellSubmission",
    "CellStatus",
    "ServerStatus",
]

#: Cell kinds a client may submit.  Deliberately the service-relevant
#: subset of :data:`repro.exec.cells.CELL_KINDS`: the figure/table cells
#: exist to render one specific artefact and are reachable via
#: ``crossarch``, which is what they derive from.
SUBMISSION_KINDS = ("crossarch", "scaling", "ranks", "trace")

#: Lifecycle of one served cell.
CELL_STATES = ("queued", "running", "done", "failed")


class SubmissionError(ValueError):
    """A submission that cannot be lowered to a valid study request.

    The server maps this to a 400 response carrying the message, so
    validation detail (including the registries' did-you-mean hints)
    reaches the client verbatim.
    """


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise SubmissionError(message)


@dataclass(frozen=True)
class CellSubmission:
    """One study-cell request as a client poses it.

    Attributes
    ----------
    kind:
        One of :data:`SUBMISSION_KINDS`.
    app:
        Workload registry name (case-insensitive, like the CLI).
    threads:
        Team width (``crossarch``/``scaling``; ``ranks`` cells use the
        rank grid's fixed per-rank width, ``trace`` cells the trace
        grid's).
    machine:
        Machine registry name — required for ``scaling`` and ``ranks``.
    ranks:
        Rank count — required for ``ranks``.
    accesses:
        Stream length for ``trace`` cells (None: the scale's default).
    scale:
        Protocol scale (``quick``/``full``) the serving config runs at.
    max_k:
        Optional SimPoint sweep cap — the stage override the CLI's
        ``--max-k`` exposes; folded into the configuration fingerprint,
        so two submissions differing only here are distinct cells.
    """

    kind: str
    app: str
    threads: int = 8
    machine: str | None = None
    ranks: int | None = None
    accesses: int | None = None
    scale: str = "quick"
    max_k: int | None = None

    @classmethod
    def from_json(cls, raw: object) -> "CellSubmission":
        """Validate one decoded JSON body into a submission."""
        _require(isinstance(raw, dict), "body must be a JSON object")
        unknown = set(raw) - {f for f in cls.__dataclass_fields__}
        _require(not unknown, f"unknown fields: {', '.join(sorted(unknown))}")
        _require("kind" in raw and "app" in raw, "kind and app are required")
        try:
            submission = cls(**raw)
        except TypeError as exc:
            raise SubmissionError(str(exc)) from None
        submission.validate()
        return submission

    def to_json(self) -> dict:
        """Wire shape (drops unset optionals to keep bodies small)."""
        return {k: v for k, v in asdict(self).items() if v is not None}

    # ------------------------------------------------------------ validation
    def validate(self) -> None:
        """Raise :class:`SubmissionError` on anything unloadable."""
        from repro.api.registry import machine_registry, workload_registry
        from repro.experiments.config import SCALES

        _require(
            self.kind in SUBMISSION_KINDS,
            f"unknown kind {self.kind!r} (known: {', '.join(SUBMISSION_KINDS)})",
        )
        _require(
            self.scale in SCALES,
            f"unknown scale {self.scale!r} (known: {', '.join(SCALES)})",
        )
        try:
            workload_registry.get(self.app)
        except KeyError as exc:
            raise SubmissionError(str(exc).strip('"')) from None
        _require(
            isinstance(self.threads, int) and self.threads >= 1,
            f"threads must be a positive integer, got {self.threads!r}",
        )
        if self.max_k is not None:
            _require(
                isinstance(self.max_k, int) and self.max_k >= 2,
                f"max_k must be an integer >= 2, got {self.max_k!r} (a "
                "one-cluster sweep selects a single representative for the "
                "whole region, which defeats the methodology)",
            )
        if self.kind in ("scaling", "ranks"):
            _require(
                self.machine is not None, f"{self.kind} cells require a machine"
            )
            try:
                machine_registry.get(self.machine)
            except KeyError as exc:
                raise SubmissionError(str(exc).strip('"')) from None
        if self.kind == "ranks":
            _require(
                isinstance(self.ranks, int) and self.ranks >= 1,
                "ranks cells require a positive integer rank count",
            )
        if self.kind == "trace" and self.accesses is not None:
            _require(
                isinstance(self.accesses, int) and self.accesses >= 0,
                f"accesses must be a non-negative integer, got {self.accesses!r}",
            )

    # ------------------------------------------------------------- lowering
    def canonical_app(self) -> str:
        """The registry-cased application name."""
        from repro.api.registry import workload_registry

        return workload_registry.entry(self.app).name

    def canonical_machine(self) -> str | None:
        """The registry-cased machine name (None when not applicable)."""
        if self.machine is None:
            return None
        from repro.api.registry import machine_registry

        return machine_registry.entry(self.machine).name

    def to_request(self, config) -> StudyRequest:
        """Lower to the exact request the batch experiments declare.

        ``config`` supplies scale-dependent defaults (trace stream
        length).  Using the experiment modules' own request builders —
        not a parallel construction — is what guarantees the service
        digest equals the scheduler's dedup digest for the same cell.
        """
        app = self.canonical_app()
        if self.kind == "crossarch":
            from repro.experiments.runner import crossarch_request

            return crossarch_request(app, self.threads)
        if self.kind == "scaling":
            from repro.experiments.scaling import scaling_request

            return scaling_request(app, self.threads, self.canonical_machine())
        if self.kind == "ranks":
            from repro.experiments.ranks import rank_request

            return rank_request(app, int(self.ranks), self.canonical_machine())
        from repro.experiments.trace import trace_request

        accesses = self.accesses if self.accesses is not None else config.trace_accesses
        return trace_request(app, accesses)

    def describe(self) -> str:
        """Human-readable cell label (logs, CLI output)."""
        parts = [self.kind, self.app, f"t{self.threads}", self.scale]
        if self.machine:
            parts.append(self.machine)
        if self.ranks:
            parts.append(f"r{self.ranks}")
        if self.accesses is not None:
            parts.append(f"a{self.accesses}")
        if self.max_k is not None:
            parts.append(f"k{self.max_k}")
        return "/".join(parts)


@dataclass(frozen=True)
class CellStatus:
    """Lifecycle snapshot of one served cell (``POST``/``GET`` answers).

    ``source`` records how the result materialised — ``"memo"`` (server
    memory), ``"disk"`` (mmap'd container), ``"computed"`` (scheduled
    execution) — and ``coalesced`` how many submissions shared that one
    execution.
    """

    digest: str
    state: str
    submission: CellSubmission | None = None
    source: str | None = None
    coalesced: int = 0
    error: str | None = None
    seconds: float | None = None

    def to_json(self) -> dict:
        body = {
            "digest": self.digest,
            "state": self.state,
            "coalesced": self.coalesced,
        }
        if self.submission is not None:
            body["submission"] = self.submission.to_json()
        for name in ("source", "error", "seconds"):
            value = getattr(self, name)
            if value is not None:
                body[name] = value
        return body

    @classmethod
    def from_json(cls, raw: dict) -> "CellStatus":
        submission = raw.get("submission")
        return cls(
            digest=raw["digest"],
            state=raw["state"],
            submission=(
                CellSubmission.from_json(submission) if submission else None
            ),
            source=raw.get("source"),
            coalesced=int(raw.get("coalesced", 0)),
            error=raw.get("error"),
            seconds=raw.get("seconds"),
        )


@dataclass(frozen=True)
class ServerStatus:
    """The ``GET /v1/status`` answer.

    ``counters`` carries the request-level tallies (requests served,
    submissions coalesced, rate-limit rejections, evictions...),
    ``stage_cache`` the :class:`~repro.exec.stagestore.StageCacheStats`
    snapshot of the serving process, and ``store`` the sharded store's
    size/shape as last scanned.
    """

    cache_version: str
    uptime_seconds: float
    in_flight: int
    counters: dict = field(default_factory=dict)
    stage_cache: dict = field(default_factory=dict)
    store: dict = field(default_factory=dict)

    def to_json(self) -> dict:
        return asdict(self)

    @classmethod
    def from_json(cls, raw: dict) -> "ServerStatus":
        return cls(
            cache_version=raw["cache_version"],
            uptime_seconds=float(raw["uptime_seconds"]),
            in_flight=int(raw["in_flight"]),
            counters=dict(raw.get("counters", {})),
            stage_cache=dict(raw.get("stage_cache", {})),
            store=dict(raw.get("store", {})),
        )
