"""Rank-aware pipeline stages: per-rank discovery, cross-rank coalescing.

Distributed jobs replace the first two canonical stages with a pair
that operates *per rank* and then coalesces:

=============== ===================== ==================================
stage           artifacts             role
=============== ===================== ==================================
rankify         rank_observations     per-rank instrumented executions
                                      (BBV/LDV collection per rank)
coalesce_ranks  signatures            rank-major signature coalescing
=============== ===================== ==================================

``coalesce_ranks`` publishes the very same ``signatures`` artifact the
shared-memory ``signature`` stage does, so clustering, selection,
measurement, reconstruction and validation run **unchanged** downstream
— the rank axis is invisible past the coalescing point, exactly as the
paper's per-thread concatenation makes the thread axis invisible past
signature assembly.

Coalesced signature layout (documented, deterministic)
------------------------------------------------------

For R ranks whose per-rank signatures have ``d_bbv`` BBV and ``d_ldv``
LDV columns, the coalesced row of one barrier point is::

    [ bbv(rank 0) | bbv(rank 1) | ... | bbv(rank R-1) |
      ldv(rank 0) | ldv(rank 1) | ... | ldv(rank R-1) ]

i.e. **rank-major within each half**: all BBV halves first, then all
LDV halves, each ordered by rank.  Each per-rank half is row-normalised
before concatenation (every rank contributes equal signature mass, so a
work-imbalanced rank changes the *shape* of the row, not its norm), and
the clustering weights are the per-rank instruction counts summed over
ranks.  The per-rank interleaving jitter is seeded per
``(discovery run, rank)`` from the configuration's randomness tree, so
the layout is bit-reproducible from the seed alone.
"""

from __future__ import annotations

import numpy as np

from repro.api.context import StageContext
from repro.api.registry import register_stage
from repro.api.stage import Stage
from repro.core.signatures import SignatureMatrix, build_signatures
from repro.hw.pmu import INSTRUCTIONS
from repro.instrumentation.bbv import collect_bbv
from repro.instrumentation.collector import DiscoveryObservation
from repro.instrumentation.ldv import collect_ldv
from repro.runtime.interleave import signature_jitter_sigma

__all__ = ["RankifyStage", "CoalesceRanksStage", "coalesce_signatures"]


def coalesce_signatures(per_rank: list[SignatureMatrix]) -> SignatureMatrix:
    """Coalesce per-rank signature matrices rank-major (see module doc).

    Example
    -------
    >>> import numpy as np
    >>> from repro.core.signatures import SignatureMatrix
    >>> one = SignatureMatrix(
    ...     combined=np.ones((3, 4)), weights=np.ones(3),
    ...     bbv_dims=3, ldv_dims=1,
    ... )
    >>> merged = coalesce_signatures([one, one])
    >>> merged.combined.shape, merged.bbv_dims, merged.ldv_dims
    ((3, 8), 6, 2)
    """
    if not per_rank:
        raise ValueError("at least one rank signature required")
    n_bp = per_rank[0].n_barrier_points
    for rank, sig in enumerate(per_rank):
        if sig.n_barrier_points != n_bp:
            raise ValueError(
                f"rank {rank} observed {sig.n_barrier_points} barrier points, "
                f"rank 0 observed {n_bp} — region boundaries misaligned"
            )
    bbv_half = np.concatenate(
        [sig.combined[:, : sig.bbv_dims] for sig in per_rank], axis=1
    )
    ldv_half = np.concatenate(
        [sig.combined[:, sig.bbv_dims :] for sig in per_rank], axis=1
    )
    weights = np.sum([sig.weights for sig in per_rank], axis=0)
    return SignatureMatrix(
        combined=np.concatenate([bbv_half, ldv_half], axis=1),
        weights=weights,
        bbv_dims=int(sum(sig.bbv_dims for sig in per_rank)),
        ldv_dims=int(sum(sig.ldv_dims for sig in per_rank)),
    )


@register_stage
class RankifyStage(Stage):
    """Step 1 (distributed): instrument each rank's execution.

    Per discovery run and per rank: collect the rank's BBV/LDV from its
    own trace, weight by the rank's exact instruction counts, and
    perturb with interleaving jitter seeded per ``(run, rank)`` — R
    Pintool invocations per run, one per MPI process.

    Requires a workload wrapped in
    :class:`~repro.workloads.distributed.DistributedWorkload`; the
    assembled graph is what :class:`repro.api.RankStudy` executes::

        RankStudy("miniFE", rank_counts=(1, 2, 4)).run()
    """

    name = "rankify"
    inputs = ()
    outputs = ("rank_observations",)
    description = "instrument every rank's execution (per-rank BBV/LDV)"
    cacheable = True

    def __init__(self, discovery_runs: int | None = None) -> None:
        if discovery_runs is not None and discovery_runs < 1:
            raise ValueError(f"discovery_runs must be >= 1, got {discovery_runs}")
        self.discovery_runs = discovery_runs

    def effective_runs(self, ctx: StageContext) -> int:
        """Constructor override, else the shared configuration."""
        if self.discovery_runs is not None:
            return self.discovery_runs
        return ctx.config.discovery_runs

    @staticmethod
    def _ranks(ctx: StageContext) -> int:
        return int(getattr(ctx.app, "ranks", 1))

    def run(self, ctx: StageContext) -> StageContext:
        trace = ctx.trace(ctx.discovery_isa)
        if not hasattr(trace, "rank_traces"):
            raise TypeError(
                f"rankify needs a distributed workload; wrap {ctx.app.name!r} "
                "in repro.workloads.distributed.DistributedWorkload"
            )
        counters = ctx.counters_on(ctx.discovery_isa)
        label = ctx.binary(ctx.discovery_isa).label
        rng = ctx.tree.child("discovery", ctx.app.name, ctx.threads, label)

        observations: list[list[DiscoveryObservation]] = []
        for run in range(self.effective_runs(ctx)):
            per_rank: list[DiscoveryObservation] = []
            for rank in range(trace.ranks):
                rank_trace = trace.rank_trace(rank)
                cols = trace.rank_columns(rank)
                weights = counters.values[:, cols, INSTRUCTIONS].sum(axis=1)
                bbv = collect_bbv(rank_trace)
                ldv = collect_ldv(rank_trace)
                sigma = signature_jitter_sigma(weights, rank_trace.threads)
                gen = rng.generator("run", run, "rank", rank)
                bbv = bbv * np.exp(sigma[:, None] * gen.standard_normal(bbv.shape))
                ldv = ldv * np.exp(sigma[:, None] * gen.standard_normal(ldv.shape))
                per_rank.append(
                    DiscoveryObservation(
                        bbv=bbv, ldv=ldv, weights=weights.copy(), run_index=run
                    )
                )
            observations.append(per_rank)
        ctx.put("rank_observations", observations)
        return ctx

    def cache_key(self, ctx: StageContext) -> dict:
        return {
            "discovery_runs": self.effective_runs(ctx),
            "discovery_isa": ctx.discovery_isa.value,
            "ranks": self._ranks(ctx),
            # The communication schedule shapes the trace this stage
            # (and, through the digest chain, everything downstream)
            # observes; a job with a different collective cadence must
            # never share cache entries.
            "phases": getattr(ctx.app, "phases", None),
        }

    def encode(self, ctx: StageContext) -> dict:
        return {
            "rank_observations": [
                [
                    {
                        "bbv": obs.bbv,
                        "ldv": obs.ldv,
                        "weights": obs.weights,
                        "run_index": int(obs.run_index),
                    }
                    for obs in per_rank
                ]
                for per_rank in ctx.require("rank_observations")
            ]
        }

    def decode(self, payload: dict, ctx: StageContext) -> None:
        ctx.put(
            "rank_observations",
            [
                [
                    DiscoveryObservation(
                        bbv=row["bbv"],
                        ldv=row["ldv"],
                        weights=row["weights"],
                        run_index=int(row["run_index"]),
                    )
                    for row in per_rank
                ]
                for per_rank in payload["rank_observations"]
            ],
        )


@register_stage
class CoalesceRanksStage(Stage):
    """Step 2 (distributed): coalesce per-rank signatures rank-major.

    Builds each rank's signature matrix (row-normalised BBV ⊕ LDV, the
    shared-memory Step 2 per rank) and concatenates them in the
    documented rank-major layout, summing the clustering weights over
    ranks.  Publishes the standard ``signatures`` artifact, so every
    downstream stage is rank-agnostic.
    """

    name = "coalesce_ranks"
    inputs = ("rank_observations",)
    outputs = ("signatures",)
    description = "coalesce per-rank signatures rank-major into one matrix"
    cacheable = True

    def __init__(self, bbv_weight: float | None = None) -> None:
        self.bbv_weight = bbv_weight

    def effective_weight(self, ctx: StageContext) -> float:
        """Constructor override, else the shared configuration."""
        return self.bbv_weight if self.bbv_weight is not None else ctx.config.bbv_weight

    def run(self, ctx: StageContext) -> StageContext:
        weight = self.effective_weight(ctx)
        ctx.put(
            "signatures",
            [
                coalesce_signatures(
                    [build_signatures(obs, weight) for obs in per_rank]
                )
                for per_rank in ctx.require("rank_observations")
            ],
        )
        return ctx

    def cache_key(self, ctx: StageContext) -> dict:
        return {"bbv_weight": self.effective_weight(ctx)}

    def encode(self, ctx: StageContext) -> dict:
        return {
            "signatures": [
                {
                    "combined": sig.combined,
                    "weights": sig.weights,
                    "bbv_dims": int(sig.bbv_dims),
                    "ldv_dims": int(sig.ldv_dims),
                }
                for sig in ctx.require("signatures")
            ]
        }

    def decode(self, payload: dict, ctx: StageContext) -> None:
        ctx.put(
            "signatures",
            [
                SignatureMatrix(
                    combined=row["combined"],
                    weights=row["weights"],
                    bbv_dims=int(row["bbv_dims"]),
                    ldv_dims=int(row["ldv_dims"]),
                )
                for row in payload["signatures"]
            ],
        )
