"""Distributed-memory rank studies on the stage API.

The paper's methodology is scoped to a single shared-memory node; a
:class:`RankStudy` opens the missing axis — *does a representative
region stay representative when the job runs as R communicating
processes?* — by sweeping one workload across rank counts × machines
through a rank-aware stage graph:

    rankify → coalesce_ranks → cluster → select → measure →
    reconstruct → validate

``rankify``/``coalesce_ranks`` (see :mod:`repro.api.rank_stages`)
instrument every rank and coalesce the per-rank signatures rank-major;
from clustering onward the canonical registered stages run unchanged on
the coalesced artifacts, and measurement sees the rank-major hybrid
trace whose network costs the machine's
:class:`~repro.hw.network.NetworkSpec` prices.

Per (machine, ranks) cell the study reports the same figures of merit
as the strong-scaling study — wall cycles, speedup/efficiency against
the 1-rank run, barrier points selected, reconstruction CPI error —
plus the **communication share**: the slowest rank's network cycles
(transfer + busy-poll wait) as a fraction of the wall, which is what
separates "the region stopped being representative" from "the job
became communication-bound".

The grid form (every evaluated app, scheduled cells, rendered tables)
lives in :mod:`repro.experiments.ranks` behind ``repro ranks``; this
module is the single-workload public API and the computation both
share.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api.builder import PipelineRun, StagePipeline, _resolve_target, _resolve_workload
from repro.api.rank_stages import CoalesceRanksStage, RankifyStage
from repro.api.scaling import best_run_metrics
from repro.api.types import PipelineConfig
from repro.exec.stagestore import StageStore
from repro.hw.machines import Machine
from repro.workloads.distributed import DistributedWorkload

__all__ = [
    "RANK_COUNTS",
    "RANK_MACHINES",
    "RANK_THREADS",
    "RankCell",
    "RankResult",
    "RankStudy",
    "default_rank_stages",
    "run_rank_cell",
    "rank_unsupported_reason",
]

#: The rank sweep's job sizes (mirroring the paper's 1/2/4/8 threads).
RANK_COUNTS = (1, 2, 4, 8)

#: OpenMP team width of every rank — the hybrid's MPI×OpenMP shape.
#: Two threads keeps the largest job (8 ranks × 2 threads) at 16
#: contexts while still exercising rank-local barrier behaviour.
RANK_THREADS = 2

#: Default machine axis: both Table II platforms plus the Section VIII
#: in-order core (one rank per node of the given machine).
RANK_MACHINES = (
    "Intel Core i7-3770",
    "ARMv8 AppliedMicro X-Gene",
    "ARMv8 in-order (A53-class)",
)


def rank_unsupported_reason(machine: Machine, threads: int) -> str:
    """Why a hybrid shape cannot be placed on one machine.

    Ranks land one per node, so only the per-rank team width can be
    unplaceable; the single source of the reason string the tables and
    tests render.
    """
    return (
        f"team of {threads} exceeds {machine.max_threads} hardware "
        f"contexts per node"
    )


def default_rank_stages() -> list:
    """The rank-aware stage graph, from the live registries.

    ``rankify`` and ``coalesce_ranks`` replace ``profile`` and
    ``signature``; the rest is the canonical shared-memory tail, so
    registered third-party replacements (a custom ``cluster``) flow
    through rank studies unchanged.
    """
    from repro.api.registry import stage_registry

    tail = ("cluster", "select", "measure", "reconstruct", "validate")
    return [RankifyStage(), CoalesceRanksStage()] + [
        stage_registry.get(name)() for name in tail
    ]


@dataclass(frozen=True)
class RankCell:
    """One (application, machine, ranks) point of a rank study.

    Attributes
    ----------
    app / machine / ranks / threads:
        The cell's coordinates: base application name, machine, rank
        count, and the per-rank OpenMP team width.
    k / total_barrier_points:
        Barrier points selected by the best (lowest primary error) set,
        and the total dynamic barrier points per rank.
    wall_mcycles:
        Slowest hardware context's mean clean-ROI cycles, in millions —
        the job's wall-clock under barrier + collective synchronisation.
    comm_mcycles:
        The slowest rank's network cycles (transfer + busy-poll wait),
        in millions, from the noise-free model — the communication bill.
    comm_pct:
        ``100 × comm_mcycles / wall_mcycles``.
    instructions:
        Mean clean-ROI instructions summed over every context.
    cpi_true / cpi_estimate / cpi_error_pct:
        Aggregate CPI of the full run, of the barrier-point
        reconstruction, and their relative error in percent.
    failure:
        Non-empty when the methodology could not be applied; every
        numeric field is zero in that case.
    """

    app: str
    machine: str
    ranks: int
    threads: int
    k: int
    total_barrier_points: int
    wall_mcycles: float
    comm_mcycles: float
    comm_pct: float
    instructions: float
    cpi_true: float
    cpi_estimate: float
    cpi_error_pct: float
    failure: str = ""

    def to_payload(self) -> dict:
        """JSON-shaped payload for the scheduler / process boundary."""
        return {
            "app": self.app,
            "machine": self.machine,
            "ranks": int(self.ranks),
            "threads": int(self.threads),
            "k": int(self.k),
            "total_barrier_points": int(self.total_barrier_points),
            "wall_mcycles": float(self.wall_mcycles),
            "comm_mcycles": float(self.comm_mcycles),
            "comm_pct": float(self.comm_pct),
            "instructions": float(self.instructions),
            "cpi_true": float(self.cpi_true),
            "cpi_estimate": float(self.cpi_estimate),
            "cpi_error_pct": float(self.cpi_error_pct),
            "failure": self.failure,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "RankCell":
        """Rebuild a cell from :meth:`to_payload` output."""
        return cls(**payload)

    @classmethod
    def failed(
        cls, app: str, machine: str, ranks: int, threads: int, reason: str
    ) -> "RankCell":
        """An all-zeros cell recording why the methodology failed here."""
        return cls(
            app=app,
            machine=machine,
            ranks=ranks,
            threads=threads,
            k=0,
            total_barrier_points=0,
            wall_mcycles=0.0,
            comm_mcycles=0.0,
            comm_pct=0.0,
            instructions=0.0,
            cpi_true=0.0,
            cpi_estimate=0.0,
            cpi_error_pct=0.0,
            failure=reason,
        )


def _cell_from_run(
    run: PipelineRun, app_name: str, machine: Machine, ranks: int, threads: int
) -> RankCell:
    """Derive one machine's rank cell from an executed stage graph."""
    metrics = best_run_metrics(run, machine)
    if metrics is None:
        return RankCell.failed(
            app_name, machine.name, ranks, threads, run.failures[machine.name]
        )

    # Communication bill from the noise-free model (the measured wall
    # already contains it; this plane just itemises the network share).
    counters = run.context.counters_on(machine.isa, machine)
    comm_cycles = float(counters.comm_cycles.sum(axis=0).max())
    return RankCell(
        app=app_name,
        machine=machine.name,
        ranks=ranks,
        threads=threads,
        k=metrics.selection.k,
        total_barrier_points=metrics.selection.n_barrier_points,
        wall_mcycles=metrics.wall_cycles / 1e6,
        comm_mcycles=comm_cycles / 1e6,
        comm_pct=(
            100.0 * comm_cycles / metrics.wall_cycles
            if metrics.wall_cycles
            else 0.0
        ),
        instructions=metrics.instructions,
        cpi_true=metrics.cpi_true,
        cpi_estimate=metrics.cpi_estimate,
        cpi_error_pct=metrics.cpi_error_pct,
    )


def run_rank_cell(
    workload,
    machine,
    ranks: int,
    threads: int = RANK_THREADS,
    config: PipelineConfig | None = None,
    store: StageStore | None = None,
) -> RankCell:
    """Execute one rank cell through the rank-aware stage graph.

    Discovery (per-rank instrumentation + coalescing + clustering)
    runs on x86_64 at the cell's job shape; measurement,
    reconstruction and validation target the cell's machine.  With a
    :class:`StageStore` the x86_64-side stage payloads are shared by
    every machine at the same (app, ranks, threads), so a grid sweep
    executes each discovery exactly once.

    Example
    -------
    >>> from repro.api import run_rank_cell, PipelineConfig
    >>> from repro.hw.measure import MeasurementProtocol
    >>> fast = PipelineConfig(
    ...     discovery_runs=2, protocol=MeasurementProtocol(repetitions=3)
    ... )
    >>> cell = run_rank_cell("MCB", "Intel Core i7-3770", ranks=2, config=fast)
    >>> cell.ranks, cell.comm_mcycles > 0
    (2, True)
    """
    app = _resolve_workload(workload)
    machine = _resolve_target(machine)
    config = config or PipelineConfig()
    if getattr(app, "distributed", False):
        job, base_name = app, app.base.name
        if job.ranks != ranks:
            raise ValueError(
                f"workload is wrapped for {job.ranks} ranks but the cell "
                f"asks for {ranks}"
            )
    else:
        job, base_name = DistributedWorkload(app, ranks), app.name
    pipeline = StagePipeline(
        job, threads, False, config,
        stages=default_rank_stages(), targets=(machine,),
    )
    return _cell_from_run(pipeline.run(store), base_name, machine, ranks, threads)


@dataclass(frozen=True)
class RankResult:
    """All cells of one application's rank study.

    Attributes
    ----------
    app:
        The base workload name.
    machines / rank_counts / threads:
        The axes, in sweep order, and the per-rank team width.
    cells:
        ``(machine name, ranks)`` → :class:`RankCell` for every
        supported grid point.
    unsupported:
        ``(machine name, ranks)`` → reason, for machines whose nodes
        cannot host the per-rank team.
    """

    app: str
    machines: tuple[str, ...]
    rank_counts: tuple[int, ...]
    threads: int
    cells: dict
    unsupported: dict

    def cell(self, machine: str, ranks: int) -> RankCell:
        """One grid point (raises ``KeyError`` for unsupported shapes)."""
        return self.cells[(machine, ranks)]

    def speedup(self, machine: str, ranks: int) -> float | None:
        """wall(1 rank) / wall(R ranks) on one machine; None without a base."""
        base = self.cells.get((machine, 1))
        cell = self.cells.get((machine, ranks))
        if base is None or cell is None or cell.failure or base.failure:
            return None
        if cell.wall_mcycles == 0.0:
            return None
        return base.wall_mcycles / cell.wall_mcycles

    def efficiency_pct(self, machine: str, ranks: int) -> float | None:
        """Parallel efficiency: speedup over rank count, in percent."""
        speedup = self.speedup(machine, ranks)
        if speedup is None:
            return None
        return 100.0 * speedup / ranks


class RankStudy:
    """Sweep one workload's rank counts × machines through the stages.

    The public, in-process form of the distributed-memory study::

        from repro.api import RankStudy

        result = RankStudy("miniFE", rank_counts=(1, 2, 4)).run()
        result.efficiency_pct("Intel Core i7-3770", 4)
        result.cell("Intel Core i7-3770", 4).comm_pct

    Every cell composes the registered rank-aware stage graph
    (:func:`default_rank_stages`); third-party stages swapped into the
    stage registry, and machines added to the machine registry, flow
    through unchanged.  The multi-application scheduled grid behind
    ``repro ranks`` lives in :mod:`repro.experiments.ranks` and
    executes the same :func:`run_rank_cell`.

    Parameters
    ----------
    workload:
        Registry name, workload class, or instance (the shared-memory
        application; each rank count wraps it on the fly).
    machines:
        Machine axis: registered names, ISAs, or Machine instances.
    rank_counts:
        Job sizes to sweep.
    threads:
        Per-rank OpenMP team width; machines whose nodes cannot host it
        are reported under :attr:`RankResult.unsupported`.
    config:
        Shared stage configuration (protocol scale, seed, ...).
    """

    def __init__(
        self,
        workload,
        machines=RANK_MACHINES,
        rank_counts: tuple[int, ...] = RANK_COUNTS,
        threads: int = RANK_THREADS,
        config: PipelineConfig | None = None,
    ) -> None:
        self.app = _resolve_workload(workload)
        self.machines: tuple[Machine, ...] = tuple(
            _resolve_target(machine) for machine in machines
        )
        self.rank_counts = tuple(rank_counts)
        self.threads = threads
        self.config = config or PipelineConfig()

    def grid(self) -> list[tuple[Machine, int]]:
        """The supported (machine, ranks) cells, in sweep order."""
        return [
            (machine, ranks)
            for machine in self.machines
            for ranks in self.rank_counts
            if machine.supports_hybrid(ranks, self.threads)
        ]

    def unsupported(self) -> dict[tuple[str, int], str]:
        """(machine name, ranks) → reason, for unplaceable shapes."""
        return {
            (machine.name, ranks): rank_unsupported_reason(machine, self.threads)
            for machine in self.machines
            for ranks in self.rank_counts
            if not machine.supports_hybrid(ranks, self.threads)
        }

    def run(self, store: StageStore | None = None) -> RankResult:
        """Execute every supported cell (stage-cached when given a store).

        One stage graph runs per rank count, targeting every machine
        that can host the shape — the x86_64 discovery executes once
        per rank count and only measurement/validation fan out across
        the machine axis.  Use ``repro ranks`` for the scheduled
        multi-application grid.
        """
        cells: dict[tuple[str, int], RankCell] = {}
        for ranks in self.rank_counts:
            machines = tuple(
                machine
                for machine in self.machines
                if machine.supports_hybrid(ranks, self.threads)
            )
            if not machines:
                continue
            job = DistributedWorkload(self.app, ranks)
            pipeline = StagePipeline(
                job, self.threads, False, self.config,
                stages=default_rank_stages(), targets=machines,
            )
            run = pipeline.run(store)
            for machine in machines:
                cells[(machine.name, ranks)] = _cell_from_run(
                    run, self.app.name, machine, ranks, self.threads
                )
        return RankResult(
            app=self.app.name,
            machines=tuple(machine.name for machine in self.machines),
            rank_counts=self.rank_counts,
            threads=self.threads,
            cells=cells,
            unsupported=self.unsupported(),
        )
