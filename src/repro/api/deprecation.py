"""Warn-once helper for the legacy facade layer.

The monolithic entry points (``BarrierPointPipeline``, ``CrossArchStudy``,
``create_workload``) survive as thin facades over :mod:`repro.api`; each
announces its replacement through :func:`warn_once` — exactly once per
process per facade, so a sweep instantiating hundreds of pipelines does
not drown the terminal.
"""

from __future__ import annotations

import warnings

__all__ = ["warn_once", "reset_warnings"]

_SEEN: set[str] = set()


def warn_once(key: str, message: str) -> bool:
    """Emit one :class:`DeprecationWarning` per ``key`` per process.

    Returns whether the warning fired, which the deprecation tests use
    to assert exactly-once behaviour.
    """
    if key in _SEEN:
        return False
    _SEEN.add(key)
    warnings.warn(message, DeprecationWarning, stacklevel=3)
    return True


def reset_warnings() -> None:
    """Forget emitted warnings (tests only)."""
    _SEEN.clear()
