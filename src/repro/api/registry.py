"""Open plugin registries: workloads, machines, stages.

The seed hard-coded its extension points — ``workloads.registry.REGISTRY``
was a literal dict, the two machines were module constants, and the
clustering entry point was a direct function call — so every new
application, platform or clustering variant meant editing core files.
A :class:`PluginRegistry` turns each of those into an open table with
decorator registration and forgiving name lookup::

    from repro.api import register_workload

    @register_workload
    class MyApp(ProxyApp):
        name = "MyApp"
        description = "third-party proxy app"
        ...

    create("myapp")   # case-insensitive lookup finds it

Lookups are case-insensitive and a miss raises a :class:`KeyError`
carrying a did-you-mean suggestion, so ``create("minife")`` no longer
fails opaquely just because Table I prints ``miniFE``.

Registries populate themselves lazily: each one names the module whose
import registers the built-in plugins (``repro.workloads.registry``,
``repro.hw.machines``, ``repro.api.stages``), imported on first lookup.
This keeps :mod:`repro.api` free of import cycles — plugin modules
import this module, never the reverse.
"""

from __future__ import annotations

import difflib
from importlib import import_module
from typing import Callable, Generic, Iterator, TypeVar

__all__ = [
    "PluginRegistry",
    "RegistryEntry",
    "workload_registry",
    "machine_registry",
    "stage_registry",
    "register_workload",
    "register_machine",
    "register_stage",
]

T = TypeVar("T")


class RegistryEntry(Generic[T]):
    """One registered plugin: the object plus display metadata."""

    __slots__ = ("name", "obj", "description")

    def __init__(self, name: str, obj: T, description: str) -> None:
        self.name = name
        self.obj = obj
        self.description = description

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RegistryEntry({self.name!r}, {self.obj!r})"


class PluginRegistry(Generic[T]):
    """A named, case-insensitively searchable table of plugins.

    Example
    -------
    >>> from repro.api import workload_registry
    >>> workload_registry.get("minife").name   # case-insensitive
    'miniFE'
    >>> "LULESH" in workload_registry
    True

    Parameters
    ----------
    kind:
        Human-readable plugin kind ('workload', 'machine', 'stage');
        used in error messages and CLI listings.
    autoload:
        Dotted module path whose import registers the built-in plugins.
        Imported (once) before the first lookup or listing, so user code
        never has to import plugin modules for their side effects.
    """

    def __init__(self, kind: str, autoload: str | None = None) -> None:
        self.kind = kind
        self._autoload = autoload
        self._loaded = autoload is None
        self._entries: dict[str, RegistryEntry[T]] = {}  # lowercase name → entry

    # -------------------------------------------------------- registration
    def register(
        self,
        obj: T | None = None,
        *,
        name: str | None = None,
        description: str | None = None,
        replace: bool = False,
    ):
        """Register a plugin; usable bare, with arguments, or imperatively.

        ``@registry.register`` and ``@registry.register(name=...)`` both
        work on classes and functions; ``registry.register(instance,
        name=...)`` registers non-decoratable objects (machine instances).
        The plugin's display name defaults to its ``name`` attribute,
        then ``__name__``; the description defaults to its
        ``description`` attribute, then the first docstring line.
        """

        def _add(target: T) -> T:
            plugin_name = name or getattr(target, "name", None) or getattr(
                target, "__name__", None
            )
            if not plugin_name or not isinstance(plugin_name, str):
                raise ValueError(f"cannot derive a name for {self.kind} {target!r}")
            text = description or getattr(target, "description", None)
            if not text or not isinstance(text, str):
                doc = getattr(target, "__doc__", None) or ""
                text = doc.strip().splitlines()[0] if doc.strip() else ""
            lowered = plugin_name.lower()
            if not replace and lowered in self._entries:
                raise ValueError(
                    f"{self.kind} {plugin_name!r} is already registered; "
                    f"pass replace=True to override"
                )
            self._entries[lowered] = RegistryEntry(plugin_name, target, text)
            return target

        if obj is not None:
            return _add(obj)
        return _add

    def unregister(self, name: str) -> None:
        """Remove one plugin (tests and example teardown)."""
        self._ensure_loaded()
        self._entries.pop(name.lower(), None)

    # ------------------------------------------------------------- lookup
    def _ensure_loaded(self) -> None:
        if not self._loaded:
            # Latch before importing so the autoload module's own lookups
            # re-enter safely, but un-latch on failure — otherwise a
            # transient import error would leave the registry permanently
            # empty and later lookups would mask the root cause.
            self._loaded = True
            try:
                import_module(self._autoload)
            except BaseException:
                self._loaded = False
                raise

    def get(self, name: str) -> T:
        """Look up one plugin, case-insensitively.

        Raises
        ------
        KeyError
            With the known names and, when the miss looks like a typo,
            a did-you-mean suggestion.
        """
        return self.entry(name).obj

    def entry(self, name: str) -> RegistryEntry[T]:
        """Full registry entry (object + metadata) for one name."""
        self._ensure_loaded()
        entry = self._entries.get(str(name).lower())
        if entry is not None:
            return entry
        known = ", ".join(e.name for e in self._entries.values())
        close = difflib.get_close_matches(
            str(name).lower(), list(self._entries), n=1, cutoff=0.6
        )
        hint = f" — did you mean {self._entries[close[0]].name!r}?" if close else ""
        raise KeyError(
            f"unknown {self.kind} {name!r}{hint} (known: {known})"
        )

    def __contains__(self, name: str) -> bool:
        self._ensure_loaded()
        return str(name).lower() in self._entries

    def __len__(self) -> int:
        self._ensure_loaded()
        return len(self._entries)

    def __iter__(self) -> Iterator[RegistryEntry[T]]:
        self._ensure_loaded()
        return iter(list(self._entries.values()))

    def names(self) -> tuple[str, ...]:
        """Display names in registration order."""
        self._ensure_loaded()
        return tuple(entry.name for entry in self._entries.values())

    def describe(self) -> list[tuple[str, str]]:
        """(name, description) rows for CLI listings."""
        self._ensure_loaded()
        return [(entry.name, entry.description) for entry in self._entries.values()]


#: The eleven Table I applications plus any user-registered workloads.
workload_registry: PluginRegistry = PluginRegistry(
    "workload", autoload="repro.workloads.registry"
)

#: Table II's evaluation machines plus the core-type-study variants.
machine_registry: PluginRegistry = PluginRegistry(
    "machine", autoload="repro.hw.machines"
)

#: The seven methodology stages plus any user-registered replacements.
stage_registry: PluginRegistry = PluginRegistry(
    "stage", autoload="repro.api.stages"
)

#: Decorator registering a workload class under its Table I style name.
register_workload: Callable = workload_registry.register

#: Decorator/registrar for machine descriptions.
register_machine: Callable = machine_registry.register

#: Decorator registering a stage class under its stage name.
register_stage: Callable = stage_registry.register
