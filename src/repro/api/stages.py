"""The seven first-class stages of the BarrierPoint methodology.

The paper's workflow (Section V) decomposed from the old 278-line
monolith into pluggable, individually cacheable steps:

========== ===================== =============================================
stage      artifacts             role
========== ===================== =============================================
profile    observations          execute the binary under the Pintool
signature  signatures            combine BBV ⊕ LDV into signature vectors
cluster    clusterings           SimPoint-style k sweep with BIC selection
select     selections            representatives + multipliers per cluster
measure    measurements          native per-BP and clean-ROI counters
reconstruct estimates            scale representatives up to whole-program
validate   evaluations           error vs. the clean region of interest
========== ===================== =============================================

Each stage takes its knobs either from the shared
:class:`~repro.api.types.PipelineConfig` or from constructor overrides
(``ClusterStage(max_k=10)``), and contributes exactly those knobs to its
cache key — so the execution layer re-runs a stage (and everything
downstream) precisely when one of *its* knobs changes.

Discovery always happens on x86_64 — "this step is only run for the
x86_64 versions of the binaries, as our objective is to extract the
representative regions of the workloads on x86_64" (Section V-A) —
while evaluation may target any registered machine.
"""

from __future__ import annotations

from dataclasses import asdict, replace

from repro.api.context import StageContext
from repro.api.registry import register_stage
from repro.api.stage import Stage
from repro.api.types import EvaluationResult
from repro.clustering.kmeans import KMeansResult
from repro.clustering.simpoint import ClusteringChoice, SimPointOptions, run_simpoint
from repro.core.errors import CrossArchitectureMismatch
from repro.core.reconstruction import reconstruct_per_rep, reconstruct_totals
from repro.core.selection import BarrierPointSelection, select_barrier_points
from repro.core.signatures import SignatureMatrix, build_signatures
from repro.core.validation import validate_estimate
from repro.hw.machines import Machine
from repro.instrumentation.collector import BarrierPointCollector, DiscoveryObservation
from repro.isa.descriptors import ISA

__all__ = [
    "ProfileStage",
    "SignatureStage",
    "ClusterStage",
    "MiniBatchClusterStage",
    "SelectStage",
    "MeasureStage",
    "ReconstructStage",
    "ValidateStage",
    "DEFAULT_STAGE_NAMES",
    "default_stages",
    "evaluate_selection",
]

#: The canonical stage order of the paper's workflow.
DEFAULT_STAGE_NAMES = (
    "profile",
    "signature",
    "cluster",
    "select",
    "measure",
    "reconstruct",
    "validate",
)


def evaluate_selection(
    ctx: StageContext,
    selection: BarrierPointSelection,
    machine: Machine,
    isa: ISA | None = None,
) -> EvaluationResult:
    """Measure → reconstruct → validate one selection on one target.

    The single source of truth both the eager facade
    (``BarrierPointPipeline.evaluate``) and the staged graph reduce to;
    raises :class:`~repro.core.errors.CrossArchitectureMismatch` when
    the target's barrier sequence disagrees with discovery.  ``isa``
    defaults to the machine's own ISA.
    """
    isa = isa or machine.isa
    ctx.check_compatible(selection, machine, isa)
    estimate = reconstruct_totals(selection, ctx.measured_means(machine, isa))
    reference = ctx.reference_totals(machine, isa)
    bp_reps, roi_reps = ctx.rep_samples(selection, machine, isa)
    report = validate_estimate(
        estimate,
        reference,
        estimate_reps=reconstruct_per_rep(selection, bp_reps),
        reference_reps=roi_reps,
    )
    return EvaluationResult(
        label=ctx.binary(isa).label, selection=selection, report=report
    )


@register_stage
class ProfileStage(Stage):
    """Step 1: run the instrumented x86_64 binary per discovery run."""

    name = "profile"
    inputs = ()
    outputs = ("observations",)
    description = "execute the binary under the Pintool (BBV/LDV collection)"
    cacheable = True

    def __init__(self, discovery_runs: int | None = None) -> None:
        if discovery_runs is not None and discovery_runs < 1:
            raise ValueError(f"discovery_runs must be >= 1, got {discovery_runs}")
        self.discovery_runs = discovery_runs

    def effective_runs(self, ctx: StageContext) -> int:
        """Constructor override, else the shared configuration."""
        if self.discovery_runs is not None:
            return self.discovery_runs
        return ctx.config.discovery_runs

    def run(self, ctx: StageContext) -> StageContext:
        trace = ctx.trace(ctx.discovery_isa)
        counters = ctx.counters_on(ctx.discovery_isa)
        label = ctx.binary(ctx.discovery_isa).label
        collector = BarrierPointCollector(
            ctx.tree.child("discovery", ctx.app.name, ctx.threads, label)
        )
        ctx.put(
            "observations",
            [
                collector.collect(trace, counters, run)
                for run in range(self.effective_runs(ctx))
            ],
        )
        return ctx

    def cache_key(self, ctx: StageContext) -> dict:
        return {
            "discovery_runs": self.effective_runs(ctx),
            "discovery_isa": ctx.discovery_isa.value,
        }

    def encode(self, ctx: StageContext) -> dict:
        return {
            "observations": [
                {
                    "bbv": obs.bbv,
                    "ldv": obs.ldv,
                    "weights": obs.weights,
                    "run_index": int(obs.run_index),
                }
                for obs in ctx.require("observations")
            ]
        }

    def decode(self, payload: dict, ctx: StageContext) -> None:
        ctx.put(
            "observations",
            [
                DiscoveryObservation(
                    bbv=row["bbv"],
                    ldv=row["ldv"],
                    weights=row["weights"],
                    run_index=int(row["run_index"]),
                )
                for row in payload["observations"]
            ],
        )


@register_stage
class SignatureStage(Stage):
    """Step 2: combine each run's BBV and LDV into signature vectors."""

    name = "signature"
    inputs = ("observations",)
    outputs = ("signatures",)
    description = "combine BBV and LDV halves into signature vectors"
    cacheable = True

    def __init__(self, bbv_weight: float | None = None) -> None:
        self.bbv_weight = bbv_weight

    def effective_weight(self, ctx: StageContext) -> float:
        """Constructor override, else the shared configuration."""
        return self.bbv_weight if self.bbv_weight is not None else ctx.config.bbv_weight

    def run(self, ctx: StageContext) -> StageContext:
        weight = self.effective_weight(ctx)
        ctx.put(
            "signatures",
            [build_signatures(obs, weight) for obs in ctx.require("observations")],
        )
        return ctx

    def cache_key(self, ctx: StageContext) -> dict:
        return {"bbv_weight": self.effective_weight(ctx)}

    def encode(self, ctx: StageContext) -> dict:
        return {
            "signatures": [
                {
                    "combined": sig.combined,
                    "weights": sig.weights,
                    "bbv_dims": int(sig.bbv_dims),
                    "ldv_dims": int(sig.ldv_dims),
                }
                for sig in ctx.require("signatures")
            ]
        }

    def decode(self, payload: dict, ctx: StageContext) -> None:
        ctx.put(
            "signatures",
            [
                SignatureMatrix(
                    combined=row["combined"],
                    weights=row["weights"],
                    bbv_dims=int(row["bbv_dims"]),
                    ldv_dims=int(row["ldv_dims"]),
                )
                for row in payload["signatures"]
            ],
        )


@register_stage
class ClusterStage(Stage):
    """Step 2½: SimPoint model selection over each run's signatures."""

    name = "cluster"
    inputs = ("signatures",)
    outputs = ("clusterings",)
    description = "SimPoint-style k-means sweep scored with BIC"
    cacheable = True

    def __init__(self, options: SimPointOptions | None = None, **overrides) -> None:
        if "maxK" in overrides:  # the BarrierPoint papers spell it maxK
            overrides["max_k"] = overrides.pop("maxK")
        self.options = options
        self.overrides = overrides

    def effective_options(self, ctx: StageContext) -> SimPointOptions:
        """Constructor options/overrides applied over the configuration."""
        base = self.options or ctx.config.simpoint
        return replace(base, **self.overrides) if self.overrides else base

    def run(self, ctx: StageContext) -> StageContext:
        options = self.effective_options(ctx)
        label = ctx.binary(ctx.discovery_isa).label
        clusterings = []
        for run, signatures in enumerate(ctx.require("signatures")):
            gen = ctx.tree.generator(
                "simpoint", ctx.app.name, ctx.threads, label, run
            )
            clusterings.append(
                run_simpoint(signatures.combined, signatures.weights, gen, options)
            )
        ctx.put("clusterings", clusterings)
        return ctx

    def cache_key(self, ctx: StageContext) -> dict:
        return {"simpoint": asdict(self.effective_options(ctx))}

    def encode(self, ctx: StageContext) -> dict:
        return {
            "clusterings": [
                {
                    "k": int(choice.k),
                    "labels": choice.result.labels,
                    "centers": choice.result.centers,
                    "inertia": float(choice.result.inertia),
                    "iterations": int(choice.result.iterations),
                    "projected": choice.projected,
                    "bic_by_k": {str(k): float(v) for k, v in choice.bic_by_k.items()},
                }
                for choice in ctx.require("clusterings")
            ]
        }

    def decode(self, payload: dict, ctx: StageContext) -> None:
        ctx.put(
            "clusterings",
            [
                ClusteringChoice(
                    k=int(row["k"]),
                    result=KMeansResult(
                        labels=row["labels"],
                        centers=row["centers"],
                        inertia=float(row["inertia"]),
                        iterations=int(row["iterations"]),
                    ),
                    projected=row["projected"],
                    bic_by_k={int(k): float(v) for k, v in row["bic_by_k"].items()},
                )
                for row in payload["clusterings"]
            ],
        )


@register_stage
class MiniBatchClusterStage(ClusterStage):
    """Step 2½ (streaming): the SimPoint sweep on mini-batch k-means.

    A drop-in replacement for :class:`ClusterStage` behind the same
    registry: it forces ``algorithm="minibatch"`` into the effective
    options, so at paper scale each k in the sweep touches a bounded
    number of signatures per step instead of the whole matrix per Lloyd
    iteration.  Everything else — cache key, payload codec, the
    BIC-scored model selection — is inherited, and the exact solver
    remains the golden oracle the quick-scale protocol uses.
    """

    name = "cluster-minibatch"
    description = "SimPoint sweep on seeded mini-batch k-means"

    def __init__(self, options: SimPointOptions | None = None, **overrides) -> None:
        super().__init__(options, **overrides)
        self.overrides.setdefault("algorithm", "minibatch")


@register_stage
class SelectStage(Stage):
    """Step 2¾: pick representatives and multipliers per clustering."""

    name = "select"
    inputs = ("clusterings", "signatures")
    outputs = ("selections",)
    description = "choose representative barrier points and multipliers"
    cacheable = True

    def run(self, ctx: StageContext) -> StageContext:
        signatures = ctx.require("signatures")
        ctx.put(
            "selections",
            [
                select_barrier_points(choice, signatures[run].weights, run)
                for run, choice in enumerate(ctx.require("clusterings"))
            ],
        )
        return ctx

    def cache_key(self, ctx: StageContext) -> dict:
        return {}

    def encode(self, ctx: StageContext) -> dict:
        return {
            "selections": [
                {
                    "representatives": sel.representatives,
                    "multipliers": sel.multipliers,
                    "labels": sel.labels,
                    "weights": sel.weights,
                    "run_index": int(sel.run_index),
                }
                for sel in ctx.require("selections")
            ]
        }

    def decode(self, payload: dict, ctx: StageContext) -> None:
        ctx.put(
            "selections",
            [
                BarrierPointSelection(
                    representatives=row["representatives"],
                    multipliers=row["multipliers"],
                    labels=row["labels"],
                    weights=row["weights"],
                    run_index=int(row["run_index"]),
                )
                for row in payload["selections"]
            ],
        )


@register_stage
class MeasureStage(Stage):
    """Step 3: native counters on every target machine.

    Per target: the instrumented per-barrier-point means, the clean ROI
    reference, and the per-repetition reads of each selection's
    representatives.  A target whose barrier sequence disagrees with
    discovery (HPGMG-FV on ARMv8) is recorded under ``failures`` instead
    of aborting the whole graph.
    """

    name = "measure"
    inputs = ("selections",)
    outputs = ("measurements", "failures")
    description = "measure per-BP and clean-ROI counters on each target"
    cacheable = True

    def run(self, ctx: StageContext) -> StageContext:
        selections = ctx.require("selections")
        measurements: dict[str, dict] = {}
        failures: dict[str, str] = dict(ctx.get("failures", {}))
        for machine in ctx.targets:
            try:
                ctx.check_compatible(selections[0], machine)
            except CrossArchitectureMismatch as exc:
                failures[machine.name] = str(exc)
                continue
            reps = {}
            for selection in selections:
                bp_reps, roi_reps = ctx.rep_samples(selection, machine)
                reps[selection.run_index] = {"bp": bp_reps, "roi": roi_reps}
            measurements[machine.name] = {
                "means": ctx.measured_means(machine),
                "reference": ctx.reference_totals(machine),
                "reps": reps,
            }
        ctx.put("measurements", measurements)
        ctx.put("failures", failures)
        return ctx

    def cache_key(self, ctx: StageContext) -> dict:
        return {
            "protocol": asdict(ctx.config.protocol),
            "targets": [machine.name for machine in ctx.targets],
        }

    def encode(self, ctx: StageContext) -> dict:
        return {
            "measurements": {
                name: {
                    "means": entry["means"],
                    "reference": entry["reference"],
                    "reps": {
                        str(run): {"bp": pair["bp"], "roi": pair["roi"]}
                        for run, pair in entry["reps"].items()
                    },
                }
                for name, entry in ctx.require("measurements").items()
            },
            "failures": dict(ctx.require("failures")),
        }

    def decode(self, payload: dict, ctx: StageContext) -> None:
        ctx.put(
            "measurements",
            {
                name: {
                    "means": entry["means"],
                    "reference": entry["reference"],
                    "reps": {
                        int(run): {"bp": pair["bp"], "roi": pair["roi"]}
                        for run, pair in entry["reps"].items()
                    },
                }
                for name, entry in payload["measurements"].items()
            },
        )
        ctx.put("failures", dict(payload["failures"]))


@register_stage
class ReconstructStage(Stage):
    """Step 4: scale representatives up to whole-program estimates."""

    name = "reconstruct"
    inputs = ("selections", "measurements")
    outputs = ("estimates",)
    description = "reconstruct whole-program counters from representatives"

    def run(self, ctx: StageContext) -> StageContext:
        selections = ctx.require("selections")
        estimates: dict[str, list[dict]] = {}
        for name, entry in ctx.require("measurements").items():
            estimates[name] = [
                {
                    "totals": reconstruct_totals(selection, entry["means"]),
                    "per_rep": reconstruct_per_rep(
                        selection, entry["reps"][selection.run_index]["bp"]
                    ),
                }
                for selection in selections
            ]
        ctx.put("estimates", estimates)
        return ctx


@register_stage
class ValidateStage(Stage):
    """Step 5: validate each estimate against the clean ROI reference."""

    name = "validate"
    inputs = ("selections", "measurements", "estimates")
    outputs = ("evaluations",)
    description = "validate estimates against the clean region of interest"

    def run(self, ctx: StageContext) -> StageContext:
        selections = ctx.require("selections")
        measurements = ctx.require("measurements")
        by_name = {machine.name: machine for machine in ctx.targets}
        evaluations: dict[str, list[EvaluationResult]] = {}
        for name, per_selection in ctx.require("estimates").items():
            entry = measurements[name]
            label = ctx.binary(by_name[name].isa).label
            evaluations[name] = [
                EvaluationResult(
                    label=label,
                    selection=selection,
                    report=validate_estimate(
                        estimate["totals"],
                        entry["reference"],
                        estimate_reps=estimate["per_rep"],
                        reference_reps=entry["reps"][selection.run_index]["roi"],
                    ),
                )
                for selection, estimate in zip(selections, per_selection, strict=True)
            ]
        ctx.put("evaluations", evaluations)
        return ctx


def default_stages() -> list[Stage]:
    """Fresh default-configured instances of the seven canonical stages."""
    from repro.api.registry import stage_registry

    return [stage_registry.get(name)() for name in DEFAULT_STAGE_NAMES]


# Importing this module is what populates the stage registry (it is the
# registry's autoload target), so the distributed-memory stages register
# here too — they live in their own module to keep this one the
# shared-memory canon.
from repro.api import rank_stages as _rank_stages  # noqa: E402,F401  (registration)
