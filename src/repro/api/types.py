"""Shared types of the public methodology API.

:class:`PipelineConfig`, :class:`EvaluationResult` and
:class:`SupportsProgram` were born in ``repro.core.pipeline``; they live
here now so the stage classes, the builder and the deprecation facades
can all import them without cycles.  ``repro.core.pipeline`` re-exports
them, so historical imports keep working.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

from repro.clustering.simpoint import SimPointOptions
from repro.core.selection import BarrierPointSelection
from repro.core.validation import EstimationReport
from repro.hw.measure import MeasurementProtocol
from repro.ir.program import Program
from repro.isa.descriptors import ISA

__all__ = [
    "SupportsProgram",
    "PipelineConfig",
    "EvaluationResult",
    "evaluation_payload",
]


@runtime_checkable
class SupportsProgram(Protocol):
    """Anything that can supply a program per (threads, ISA) — the
    contract the workload classes implement."""

    name: str

    def program(self, threads: int, isa: ISA) -> Program:  # pragma: no cover
        """Build the region-of-interest program for a configuration."""
        ...


@dataclass(frozen=True)
class PipelineConfig:
    """Pipeline parameters; defaults follow the paper's protocol.

    Example
    -------
    >>> from repro.api import PipelineConfig
    >>> from repro.hw.measure import MeasurementProtocol
    >>> fast = PipelineConfig(
    ...     discovery_runs=3, protocol=MeasurementProtocol(repetitions=5)
    ... )
    >>> fast.discovery_runs, fast.seed
    (3, 2017)

    Attributes
    ----------
    discovery_runs:
        Barrier-point discovery repetitions (paper: 10).
    simpoint:
        Clustering options (maxK = 20 etc.).
    protocol:
        Measurement protocol (20 repetitions, pinned).
    bbv_weight:
        BBV/LDV balance inside signature vectors.
    seed:
        Root seed of the configuration's randomness tree.
    """

    discovery_runs: int = 10
    simpoint: SimPointOptions = field(default_factory=SimPointOptions)
    protocol: MeasurementProtocol = field(default_factory=MeasurementProtocol)
    bbv_weight: float = 0.5
    seed: int = 2017

    def __post_init__(self) -> None:
        if self.discovery_runs < 1:
            raise ValueError(f"discovery_runs must be >= 1, got {self.discovery_runs}")


@dataclass(frozen=True)
class EvaluationResult:
    """Validation of one barrier point set on one platform.

    Pairs the selection with its :class:`~repro.core.validation.EstimationReport`;
    ``report.primary_error`` (worst cycles/instructions error) is the
    ranking key every study uses to pick its best set.
    """

    label: str
    selection: BarrierPointSelection
    report: EstimationReport

    def __str__(self) -> str:
        return f"{self.label}: k={self.selection.k}, {self.report.summary()}"


def evaluation_payload(result: EvaluationResult) -> dict:
    """JSON-shaped rendering of one :class:`EvaluationResult`.

    Every float is emitted exactly (``repr``-round-trippable), so two
    payloads compare byte-identical iff the underlying numbers do — the
    equivalence test between the stage API and the legacy pipeline
    serialises both sides through this function.
    """
    selection = result.selection
    report = result.report
    return {
        "label": result.label,
        "selection": {
            "representatives": [int(v) for v in selection.representatives],
            "multipliers": [float(v) for v in selection.multipliers],
            "labels": [int(v) for v in selection.labels],
            "weights": [float(v) for v in selection.weights],
            "run_index": int(selection.run_index),
        },
        "report": {
            "error_mean": [float(v) for v in report.error_mean],
            "error_per_thread": [
                [float(v) for v in row] for row in report.error_per_thread
            ],
            "error_std": [float(v) for v in report.error_std],
        },
    }
