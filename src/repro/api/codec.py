"""Bit-exact payload codecs for stage and cell artifacts.

Two planes, one contract: a decoded payload is indistinguishable from a
freshly computed one, to the bit.

* **Columnar plane** (default, ``CODEC_VERSION`` 2) —
  :func:`encode_payload` splits a JSON-shaped tree with
  :class:`numpy.ndarray` leaves into a pure-JSON *metadata plane* (the
  tree with each array replaced by an index placeholder) and an *array
  table* of contiguous little-endian buffers.  The binary container in
  :mod:`repro.exec.columnar` lays those buffers out as aligned segments
  behind a small header, so :func:`decode_payload` can rebuild the tree
  from zero-copy ``np.frombuffer`` views over an ``mmap`` — no base64,
  no ``tolist``, no text parsing of array data.

* **Legacy plane** (codec 1, kept live by ``REPRO_FORCE_LEGACY_CODEC=1``)
  — arrays become ``{dtype, shape, data}`` dicts with base64 payloads
  inside ordinary JSON (:func:`encode_array`/:func:`decode_array`);
  :func:`payload_to_jsonable`/:func:`payload_from_jsonable` apply that
  encoding over a whole tree.  Decimal text would be ~3x larger than the
  data and float round-tripping mistakes are a classic source of
  cache-only result drift, which is why even the legacy plane ships raw
  little-endian bytes.

The active codec version is part of the cache version
(:func:`repro.exec.store.cache_version`), so flipping codecs relocates
every cache address instead of raising on a format it cannot decode.
"""

from __future__ import annotations

import base64
import os

import numpy as np

__all__ = [
    "CODEC_VERSION",
    "LEGACY_CODEC_VERSION",
    "active_codec_version",
    "legacy_codec_forced",
    "encode_array",
    "decode_array",
    "encode_payload",
    "decode_payload",
    "payload_to_jsonable",
    "payload_from_jsonable",
    "payload_nbytes",
    "payload_has_arrays",
]

#: The binary columnar codec (metadata JSON + little-endian segments).
CODEC_VERSION = 2
#: The base64-inside-JSON codec it replaced.
LEGACY_CODEC_VERSION = 1

#: Environment switch keeping the legacy plane exercised (CI runs the
#: integration suite once with it set, proving the fallback stays live).
_FORCE_LEGACY_ENV = "REPRO_FORCE_LEGACY_CODEC"

#: Placeholder key marking an array slot in the metadata plane.  The
#: legacy plane never produces single-key dicts with this key, and stage
#: payloads are built from dataclass fields, so the sentinel cannot
#: collide with real data.
_ARRAY_KEY = "__ndarray__"


def legacy_codec_forced() -> bool:
    """Whether ``REPRO_FORCE_LEGACY_CODEC`` selects the base64 plane."""
    return os.environ.get(_FORCE_LEGACY_ENV, "").strip() not in ("", "0")


def active_codec_version() -> int:
    """The codec new cache entries are written with (2, or 1 if forced)."""
    return LEGACY_CODEC_VERSION if legacy_codec_forced() else CODEC_VERSION


def _as_little_endian(array: np.ndarray) -> np.ndarray:
    """Contiguous little-endian view/copy of one array.

    Shape-preserving: ``np.ascontiguousarray`` would promote 0-d arrays
    to ``(1,)``, so it only runs when the input isn't contiguous already
    (0-d arrays always are).
    """
    array = np.asarray(array)
    if not array.flags.c_contiguous:
        array = np.ascontiguousarray(array)
    if array.dtype.byteorder == ">":  # pragma: no cover - big-endian hosts only
        array = array.astype(array.dtype.newbyteorder("<"))
    return array


# ------------------------------------------------------------ legacy plane
def encode_array(array: np.ndarray) -> dict:
    """Encode one array as ``{dtype, shape, data}`` with base64 payload.

    Example
    -------
    >>> import numpy as np
    >>> from repro.api.codec import decode_array, encode_array
    >>> original = np.linspace(0.0, 1.0, 7)
    >>> bool(np.array_equal(decode_array(encode_array(original)), original))
    True
    """
    array = _as_little_endian(array)
    return {
        "dtype": array.dtype.str,
        "shape": list(array.shape),
        "data": base64.b64encode(array.tobytes()).decode("ascii"),
    }


def decode_array(payload: dict) -> np.ndarray:
    """Rebuild the exact array :func:`encode_array` saw."""
    raw = base64.b64decode(payload["data"])
    array = np.frombuffer(raw, dtype=np.dtype(payload["dtype"]))
    return array.reshape(tuple(payload["shape"])).copy()


def _is_encoded_array(node: dict) -> bool:
    return set(node) == {"dtype", "shape", "data"} and isinstance(
        node.get("data"), str
    )


def payload_to_jsonable(payload):
    """Legacy plane: replace every ndarray leaf with its base64 dict."""
    if isinstance(payload, np.ndarray):
        return encode_array(payload)
    if isinstance(payload, dict):
        return {key: payload_to_jsonable(value) for key, value in payload.items()}
    if isinstance(payload, (list, tuple)):
        return [payload_to_jsonable(value) for value in payload]
    return payload


def payload_from_jsonable(payload):
    """Inverse of :func:`payload_to_jsonable` (sniffs the array dicts)."""
    if isinstance(payload, dict):
        if _is_encoded_array(payload):
            return decode_array(payload)
        return {key: payload_from_jsonable(value) for key, value in payload.items()}
    if isinstance(payload, list):
        return [payload_from_jsonable(value) for value in payload]
    return payload


# ---------------------------------------------------------- columnar plane
def encode_payload(payload) -> tuple[object, list[np.ndarray]]:
    """Split a payload tree into its metadata plane and array table.

    Every :class:`numpy.ndarray` leaf is replaced by
    ``{"__ndarray__": index}`` and appended (contiguous, little-endian)
    to the returned table; scalars, strings, dicts and lists pass
    through untouched, so the metadata plane is plain JSON.

    Example
    -------
    >>> import numpy as np
    >>> meta, arrays = encode_payload({"x": np.arange(3), "k": 7})
    >>> meta == {"x": {"__ndarray__": 0}, "k": 7} and len(arrays) == 1
    True
    """
    arrays: list[np.ndarray] = []

    def walk(node):
        if isinstance(node, np.ndarray):
            arrays.append(_as_little_endian(node))
            return {_ARRAY_KEY: len(arrays) - 1}
        if isinstance(node, dict):
            return {key: walk(value) for key, value in node.items()}
        if isinstance(node, (list, tuple)):
            return [walk(value) for value in node]
        return node

    return walk(payload), arrays


def decode_payload(meta, arrays: list[np.ndarray]):
    """Rebuild the payload tree :func:`encode_payload` split apart.

    ``arrays`` may be zero-copy views (the columnar container hands in
    mmap-backed buffers); they are attached as-is, so a decoded payload
    costs no array copies.
    """
    if isinstance(meta, dict):
        if set(meta) == {_ARRAY_KEY}:
            return arrays[meta[_ARRAY_KEY]]
        return {key: decode_payload(value, arrays) for key, value in meta.items()}
    if isinstance(meta, list):
        return [decode_payload(value, arrays) for value in meta]
    return meta


def payload_nbytes(payload) -> int:
    """Total array bytes in a payload tree (the transport-size estimate).

    The scheduler uses this to decide whether a cell payload should ride
    the pickle boundary or be reattached by file handle.
    """
    if isinstance(payload, np.ndarray):
        return int(payload.nbytes)
    if isinstance(payload, dict):
        return sum(payload_nbytes(value) for value in payload.values())
    if isinstance(payload, (list, tuple)):
        return sum(payload_nbytes(value) for value in payload)
    return 0


def payload_has_arrays(payload) -> bool:
    """Whether any :class:`numpy.ndarray` (even empty) is in the tree.

    Distinct from ``payload_nbytes(payload) > 0``: an all-empty-array
    payload carries zero bytes but still cannot ride a plain-JSON plane.
    """
    if isinstance(payload, np.ndarray):
        return True
    if isinstance(payload, dict):
        return any(payload_has_arrays(value) for value in payload.values())
    if isinstance(payload, (list, tuple)):
        return any(payload_has_arrays(value) for value in payload)
    return False
