"""Bit-exact JSON encoding of numpy arrays for stage payloads.

Stage payloads must be JSON-shaped so the content-addressed store can
persist them and ship them across process boundaries, but decimal text
would be ~3x larger than the data and float round-tripping mistakes are
a classic source of cache-only result drift.  Arrays are therefore
encoded as base64 of their raw little-endian bytes plus dtype/shape
metadata: the round trip is exact to the bit, and a decoded stage is
indistinguishable from a freshly computed one.
"""

from __future__ import annotations

import base64

import numpy as np

__all__ = ["encode_array", "decode_array"]


def encode_array(array: np.ndarray) -> dict:
    """Encode one array as ``{dtype, shape, data}`` with base64 payload.

    Example
    -------
    >>> import numpy as np
    >>> from repro.api.codec import decode_array, encode_array
    >>> original = np.linspace(0.0, 1.0, 7)
    >>> bool(np.array_equal(decode_array(encode_array(original)), original))
    True
    """
    array = np.ascontiguousarray(array)
    if array.dtype.byteorder == ">":  # pragma: no cover - big-endian hosts only
        array = array.astype(array.dtype.newbyteorder("<"))
    return {
        "dtype": array.dtype.str,
        "shape": list(array.shape),
        "data": base64.b64encode(array.tobytes()).decode("ascii"),
    }


def decode_array(payload: dict) -> np.ndarray:
    """Rebuild the exact array :func:`encode_array` saw."""
    raw = base64.b64decode(payload["data"])
    array = np.frombuffer(raw, dtype=np.dtype(payload["dtype"]))
    return array.reshape(tuple(payload["shape"])).copy()
