"""``repro.api`` — the composable stage-based methodology API.

The paper's workflow (profile → signatures → clustering → selection →
measurement → reconstruction → validation) is expressed as seven
first-class :class:`~repro.api.stage.Stage` plugins assembled by a
fluent builder::

    from repro.api import ClusterStage, build_pipeline

    run = (
        build_pipeline("miniFE", threads=8)
        .with_stage(ClusterStage(max_k=10))
        .on("ARMv8")
        .run()
    )

Workloads, machines and stages live in open registries
(:data:`workload_registry`, :data:`machine_registry`,
:data:`stage_registry`) with decorator registration
(``@register_workload`` etc.) and case-insensitive, did-you-mean name
lookup, so new applications, platforms and clustering variants plug in
without touching core files.

Axis sweeps build on the same graph: :class:`ScalingStudy` asks
whether a representative region survives team growth, and
:class:`RankStudy` whether it survives distribution over MPI-style
ranks (per-rank discovery through the registered ``rankify`` /
``coalesce_ranks`` stages, communication priced by each machine's
network model).  The legacy ``BarrierPointPipeline`` /
``CrossArchStudy`` / ``create_workload`` entry points remain as
deprecation-shimmed facades over this package.
"""

from repro.api.builder import (
    PipelineBuilder,
    PipelineRun,
    StagePipeline,
    build_pipeline,
)
from repro.api.context import StageContext
from repro.api.registry import (
    PluginRegistry,
    machine_registry,
    register_machine,
    register_stage,
    register_workload,
    stage_registry,
    workload_registry,
)
from repro.api.rank_stages import (
    CoalesceRanksStage,
    RankifyStage,
    coalesce_signatures,
)
from repro.api.ranks import (
    RANK_COUNTS,
    RANK_MACHINES,
    RANK_THREADS,
    RankCell,
    RankResult,
    RankStudy,
    default_rank_stages,
    run_rank_cell,
)
from repro.api.scaling import (
    SCALING_MACHINES,
    SCALING_THREAD_COUNTS,
    ScalingCell,
    ScalingResult,
    ScalingStudy,
    run_scaling_cell,
)
from repro.api.stage import Stage
from repro.api.stages import (
    DEFAULT_STAGE_NAMES,
    ClusterStage,
    MeasureStage,
    ProfileStage,
    ReconstructStage,
    SelectStage,
    SignatureStage,
    ValidateStage,
    default_stages,
    evaluate_selection,
)
from repro.api.study import CrossArchResult, run_crossarch
from repro.api.types import (
    EvaluationResult,
    PipelineConfig,
    SupportsProgram,
    evaluation_payload,
)

__all__ = [
    "PipelineBuilder",
    "PipelineRun",
    "StagePipeline",
    "build_pipeline",
    "StageContext",
    "PluginRegistry",
    "workload_registry",
    "machine_registry",
    "stage_registry",
    "register_workload",
    "register_machine",
    "register_stage",
    "Stage",
    "DEFAULT_STAGE_NAMES",
    "default_stages",
    "ProfileStage",
    "SignatureStage",
    "ClusterStage",
    "SelectStage",
    "MeasureStage",
    "ReconstructStage",
    "ValidateStage",
    "evaluate_selection",
    "CrossArchResult",
    "run_crossarch",
    "SCALING_MACHINES",
    "SCALING_THREAD_COUNTS",
    "ScalingCell",
    "ScalingResult",
    "ScalingStudy",
    "run_scaling_cell",
    "RANK_COUNTS",
    "RANK_MACHINES",
    "RANK_THREADS",
    "RankCell",
    "RankResult",
    "RankStudy",
    "RankifyStage",
    "CoalesceRanksStage",
    "coalesce_signatures",
    "default_rank_stages",
    "run_rank_cell",
    "EvaluationResult",
    "PipelineConfig",
    "SupportsProgram",
    "evaluation_payload",
]
