"""The mutable state a stage graph runs over.

A :class:`StageContext` owns one (application, thread count, vectorised?)
configuration: its randomness tree, the lazily-built traces and true
counters per (ISA, machine), the measurement memos, and the ``artifacts``
mapping the stages read from and write to (observations → signatures →
clusterings → selections → measurements → estimates → evaluations).

Every random stream is addressed by exactly the paths the monolithic
``BarrierPointPipeline`` used — ``("structure", app, threads)``,
``("uarch", app, threads)``, ``("discovery", ..., label)``,
``("simpoint", ..., run)``, ``("measure", ..., machine)``,
``("per-rep", ..., run_index)`` — which is what makes the decomposed
stage pipeline bit-identical to the seed implementation, and what lets
a stage decoded from the cache hand downstream stages the same numbers
a live run would.
"""

from __future__ import annotations

import numpy as np

from repro.api.types import PipelineConfig, SupportsProgram
from repro.core.errors import CrossArchitectureMismatch
from repro.core.selection import BarrierPointSelection
from repro.hw.machines import Machine, machine_for
from repro.hw.measure import (
    measure_barrier_point_means,
    measure_roi_totals,
    sample_barrier_point_reps,
    sample_roi_reps,
)
from repro.hw.perf import PerfModel, TrueCounters
from repro.ir.trace import ExecutionTrace
from repro.isa.descriptors import ISA, BinaryConfig
from repro.runtime.execution import execute_program
from repro.util.rng import RngTree

__all__ = ["StageContext"]


class StageContext:
    """Shared state of one pipeline execution.

    Stages communicate exclusively through the context: each one reads
    the artifacts named in its ``inputs`` (:meth:`require`) and
    publishes its ``outputs`` (:meth:`put`), while the lazily-built
    traces, counters and measurement memos are shared by every stage of
    the run.

    Example
    -------
    >>> from repro.api import StageContext
    >>> from repro.workloads.registry import create
    >>> ctx = StageContext(create("MCB"), threads=2)
    >>> ctx.put("note", 42)
    >>> ctx.require("note")
    42
    >>> ctx.get("missing", "default")
    'default'

    Parameters
    ----------
    app / threads / vectorised / config:
        The configuration under study.
    targets:
        Machines the evaluation-side stages (measure → reconstruct →
        validate) operate on.  Defaults to the discovery machine.
    discovery_isa:
        Where barrier points are discovered; the paper always uses
        x86_64 ("our objective is to extract the representative regions
        of the workloads on x86_64", Section V-A).
    """

    def __init__(
        self,
        app: SupportsProgram,
        threads: int,
        vectorised: bool = False,
        config: PipelineConfig | None = None,
        targets: tuple[Machine, ...] = (),
        discovery_isa: ISA = ISA.X86_64,
    ) -> None:
        self.app = app
        self.threads = threads
        self.vectorised = vectorised
        self.config = config or PipelineConfig()
        self.discovery_isa = discovery_isa
        self.targets: tuple[Machine, ...] = targets or (machine_for(discovery_isa),)
        self.tree = RngTree(self.config.seed)
        self.artifacts: dict[str, object] = {}
        self._traces: dict[ISA, ExecutionTrace] = {}
        self._counters: dict[tuple[ISA, str], TrueCounters] = {}
        self._measured: dict[tuple[ISA, str], np.ndarray] = {}
        self._references: dict[tuple[ISA, str], np.ndarray] = {}
        self._reps: dict[tuple, tuple[np.ndarray, np.ndarray]] = {}

    # -------------------------------------------------------- artifacts
    def put(self, name: str, value: object) -> None:
        """Publish one stage output."""
        self.artifacts[name] = value

    def get(self, name: str, default: object = None) -> object:
        """Read an artifact if present."""
        return self.artifacts.get(name, default)

    def require(self, name: str) -> object:
        """Read an artifact a stage depends on; raise if missing."""
        try:
            return self.artifacts[name]
        except KeyError:
            raise RuntimeError(
                f"stage input {name!r} missing — did an upstream stage run? "
                f"(present: {sorted(self.artifacts)})"
            ) from None

    # ---------------------------------------------------------- plumbing
    def binary(self, isa: ISA) -> BinaryConfig:
        """The binary variant executed on ``isa`` in this configuration."""
        return BinaryConfig(isa, self.vectorised)

    def trace(self, isa: ISA) -> ExecutionTrace:
        """The (cached) dynamic execution on one ISA.

        Structural randomness is keyed only by (app, threads): both ISAs
        and both vectorisation settings observe the same input data and
        barrier-point sequence, exactly as native runs of the same
        problem would — except where the application itself iterates
        differently per architecture (HPGMG-FV).

        A workload carrying the ``distributed`` marker (see
        :class:`~repro.workloads.distributed.DistributedWorkload`)
        executes once per rank and is coalesced into a rank-major
        :class:`~repro.runtime.distributed.DistributedTrace`; the
        workload's distinct name keeps its randomness paths and cache
        digests apart from the shared-memory pipelines.
        """
        if isa not in self._traces:
            program = self.app.program(self.threads, isa)
            rng = self.tree.child("structure", self.app.name, self.threads)
            if getattr(self.app, "distributed", False):
                from repro.runtime.distributed import execute_distributed

                self._traces[isa] = execute_distributed(
                    program,
                    self.binary(isa),
                    self.app.ranks,
                    self.threads,
                    rng,
                    comm=self.app.comm_schedule(self.threads, isa),
                )
            else:
                self._traces[isa] = execute_program(
                    program, self.binary(isa), self.threads, rng
                )
        return self._traces[isa]

    def counters_on(self, isa: ISA, machine: Machine | None = None) -> TrueCounters:
        """True (noise-free) per-barrier-point counters on one machine."""
        machine = machine or machine_for(isa)
        key = (isa, machine.name)
        if key not in self._counters:
            model = PerfModel(self.tree.child("uarch", self.app.name, self.threads))
            self._counters[key] = model.true_counters(self.trace(isa), machine)
        return self._counters[key]

    def check_compatible(
        self,
        selection: BarrierPointSelection,
        machine: Machine,
        isa: ISA | None = None,
    ) -> TrueCounters:
        """Counters on a target, verifying the barrier sequences align.

        ``isa`` defaults to the machine's own; an explicit mismatched
        pairing (the legacy API allowed it) fails inside the hardware
        model with a :class:`ValueError`.

        Raises
        ------
        CrossArchitectureMismatch
            If the target executes a different number of barrier points
            than the discovery architecture (Section V-B's HPGMG-FV
            limitation).
        """
        counters = self.counters_on(isa or machine.isa, machine)
        if counters.n_barrier_points != selection.n_barrier_points:
            raise CrossArchitectureMismatch(
                self.app.name, selection.n_barrier_points, counters.n_barrier_points
            )
        return counters

    # ------------------------------------------------------- measurement
    def _measure_rng(self, isa: ISA, machine: Machine) -> RngTree:
        return self.tree.child(
            "measure", self.app.name, self.threads,
            self.binary(isa).label, machine.name,
        )

    def measured_means(self, machine: Machine, isa: ISA | None = None) -> np.ndarray:
        """Mean per-barrier-point counters on a target (instrumented run)."""
        isa = isa or machine.isa
        key = (isa, machine.name)
        if key not in self._measured:
            self._measured[key] = measure_barrier_point_means(
                self.counters_on(isa, machine),
                machine,
                self.config.protocol,
                self._measure_rng(isa, machine),
            )
        return self._measured[key]

    def reference_totals(self, machine: Machine, isa: ISA | None = None) -> np.ndarray:
        """Mean clean ROI counters on a target (the validation target)."""
        isa = isa or machine.isa
        key = (isa, machine.name)
        if key not in self._references:
            self._references[key] = measure_roi_totals(
                self.counters_on(isa, machine),
                machine,
                self.config.protocol,
                self._measure_rng(isa, machine),
            )
        return self._references[key]

    def rep_samples(
        self,
        selection: BarrierPointSelection,
        machine: Machine,
        isa: ISA | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-repetition (selected-BP, ROI) reads for one selection.

        Memoised on the representative set as well as the run index, so
        derived selections (coalescing, drop-small ablations) sharing a
        run index never alias each other's samples.
        """
        isa = isa or machine.isa
        key = (
            isa,
            machine.name,
            selection.run_index,
            tuple(int(i) for i in selection.representatives),
        )
        if key not in self._reps:
            counters = self.counters_on(isa, machine)
            rep_rng = self.tree.child(
                "per-rep", self.app.name, self.threads,
                self.binary(isa).label, machine.name,
                selection.run_index,
            )
            bp_reps = sample_barrier_point_reps(
                counters, machine, self.config.protocol, rep_rng,
                selection.representatives,
            )
            roi_reps = sample_roi_reps(
                counters, machine, self.config.protocol, rep_rng
            )
            self._reps[key] = (bp_reps, roi_reps)
        return self._reps[key]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"StageContext({self.app.name!r}, threads={self.threads}, "
            f"vectorised={self.vectorised}, artifacts={sorted(self.artifacts)})"
        )
