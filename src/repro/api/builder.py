"""Fluent assembly of stage pipelines.

The one-liner the redesign is named for::

    from repro.api import ClusterStage, build_pipeline

    run = (
        build_pipeline("miniFE", threads=8)
        .with_stage(ClusterStage(max_k=10))
        .on("ARMv8")
        .run()
    )
    best = min(run.evaluations_on("ARMv8"), key=lambda e: e.report.primary_error)

``build_pipeline`` resolves the workload through the open registry (so
case-insensitive names and third-party plugins both work), the builder
swaps or inserts stages by name, ``on`` adds evaluation targets
(machines, ISAs, or registered names), and ``run`` executes the graph —
optionally against a :class:`~repro.exec.stagestore.StageStore`, caching
every cacheable stage under a digest chain of upstream cache keys.
"""

from __future__ import annotations

import time
from dataclasses import replace

import numpy as np

from repro.api.context import StageContext
from repro.api.registry import machine_registry, workload_registry
from repro.api.stage import Stage
from repro.api.stages import default_stages, evaluate_selection
from repro.api.types import EvaluationResult, PipelineConfig, SupportsProgram
from repro.core.selection import BarrierPointSelection
from repro.exec.stagestore import StageStore, base_digest, chain_digest
from repro.hw.machines import Machine, machine_for
from repro.hw.perf import TrueCounters
from repro.ir.trace import ExecutionTrace
from repro.isa.descriptors import ISA, BinaryConfig

__all__ = ["PipelineBuilder", "StagePipeline", "PipelineRun", "build_pipeline"]


def _resolve_workload(workload) -> SupportsProgram:
    """Accept a registry name, a workload class, or a ready instance."""
    if isinstance(workload, str):
        return workload_registry.get(workload)()
    if isinstance(workload, type):
        return workload()
    return workload


def _resolve_target(target) -> Machine:
    """Accept a Machine, an ISA, an ISA value, or a registered name."""
    if isinstance(target, Machine):
        return target
    if isinstance(target, ISA):
        return machine_for(target)
    try:
        return machine_for(ISA(str(target)))
    except ValueError:
        return machine_registry.get(str(target))


class PipelineRun:
    """The artifacts of one executed stage graph.

    Wraps the run's :class:`~repro.api.context.StageContext` with typed
    accessors for the common artifacts; anything a custom stage
    published is reachable through ``run.context.get(name)``.

    Example
    -------
    >>> from repro.api import build_pipeline, PipelineConfig
    >>> from repro.hw.measure import MeasurementProtocol
    >>> fast = PipelineConfig(
    ...     discovery_runs=1, protocol=MeasurementProtocol(repetitions=2)
    ... )
    >>> run = build_pipeline("XSBench", threads=2, config=fast).run()
    >>> len(run.selections)
    1
    >>> sorted(run.evaluations)
    ['Intel Core i7-3770']
    """

    def __init__(self, context: StageContext, stages: tuple[Stage, ...]) -> None:
        self.context = context
        self.stages = stages

    @property
    def selections(self) -> list[BarrierPointSelection]:
        """One barrier point set per discovery run."""
        return self.context.require("selections")

    @property
    def evaluations(self) -> dict[str, list[EvaluationResult]]:
        """Machine name → per-selection validation results."""
        return self.context.require("evaluations")

    @property
    def failures(self) -> dict[str, str]:
        """Machine name → why the methodology could not be applied."""
        return self.context.get("failures", {})

    def evaluations_on(self, target) -> list[EvaluationResult]:
        """Validation results for one target (Machine, ISA, or name)."""
        return self.evaluations[_resolve_target(target).name]


class StagePipeline:
    """An assembled stage graph over one configuration.

    Offers both granular execution (``discover`` runs the x86_64-side
    stages, ``evaluate`` validates one selection on one platform — the
    calls experiment drivers make) and whole-graph execution (``run``,
    optionally stage-cached).

    Example
    -------
    >>> from repro.api import build_pipeline, PipelineConfig
    >>> from repro.hw.measure import MeasurementProtocol
    >>> fast = PipelineConfig(
    ...     discovery_runs=1, protocol=MeasurementProtocol(repetitions=2)
    ... )
    >>> pipeline = build_pipeline("XSBench", threads=2, config=fast).build()
    >>> selections = pipeline.discover()   # x86_64-side stages only
    >>> selections[0].k
    1
    """

    def __init__(
        self,
        app: SupportsProgram,
        threads: int,
        vectorised: bool = False,
        config: PipelineConfig | None = None,
        stages: list[Stage] | None = None,
        targets: tuple[Machine, ...] = (),
        discovery_isa: ISA = ISA.X86_64,
    ) -> None:
        self.stages: tuple[Stage, ...] = tuple(
            stages if stages is not None else default_stages()
        )
        self.context = StageContext(
            app,
            threads,
            vectorised,
            config,
            targets=targets,
            discovery_isa=discovery_isa,
        )
        self._completed: set[str] = set()

    # ------------------------------------------------------------ identity
    @property
    def app(self) -> SupportsProgram:
        """The workload under study."""
        return self.context.app

    @property
    def threads(self) -> int:
        """Team width."""
        return self.context.threads

    @property
    def vectorised(self) -> bool:
        """Whether the vectorised binary variant runs."""
        return self.context.vectorised

    @property
    def config(self) -> PipelineConfig:
        """Shared stage configuration."""
        return self.context.config

    def binary(self, isa: ISA) -> BinaryConfig:
        """The binary variant executed on ``isa`` in this configuration."""
        return self.context.binary(isa)

    # ------------------------------------------------------------ plumbing
    def trace(self, isa: ISA) -> ExecutionTrace:
        """The (cached) dynamic execution on one ISA."""
        return self.context.trace(isa)

    def counters(self, isa: ISA) -> TrueCounters:
        """True counters on the paper's machine for one ISA."""
        return self.context.counters_on(isa)

    def counters_on(self, isa: ISA, machine: Machine | None = None) -> TrueCounters:
        """True counters on an explicit machine (core-type study)."""
        return self.context.counters_on(isa, machine)

    def measured_means(self, isa: ISA, machine: Machine | None = None) -> np.ndarray:
        """Mean per-barrier-point counters on a platform."""
        return self.context.measured_means(machine or machine_for(isa), isa)

    def reference_totals(self, isa: ISA, machine: Machine | None = None) -> np.ndarray:
        """Mean clean ROI counters on a platform."""
        return self.context.reference_totals(machine or machine_for(isa), isa)

    # ------------------------------------------------------------- running
    def _execute(self, stages, store: StageStore | None) -> None:
        digest = base_digest(
            app=self.app.name,
            threads=self.threads,
            vectorised=self.vectorised,
            seed=self.config.seed,
            discovery_isa=self.context.discovery_isa.value,
        )
        for stage in self.stages:
            digest = chain_digest(
                digest,
                stage.name,
                {
                    "impl": f"{type(stage).__module__}.{type(stage).__qualname__}",
                    "key": stage.cache_key(self.context),
                },
            )
            if stage not in stages or stage.name in self._completed:
                continue
            cached = store is not None and store.enabled and stage.cacheable
            payload = store.load(digest, stage.name) if cached else None
            if payload is not None:
                stage.decode(payload, self.context)
            else:
                started = time.perf_counter()
                stage.run(self.context)
                if store is not None:
                    # Accounted even when the store is disabled, so
                    # --profile works under --no-cache.
                    store.stats.record_run(
                        stage.name, time.perf_counter() - started
                    )
                if cached:
                    store.store(digest, stage.name, stage.encode(self.context))
            self._completed.add(stage.name)

    def run(self, store: StageStore | None = None) -> PipelineRun:
        """Execute the full graph (stage-cached when a store is given)."""
        self._execute(self.stages, store)
        return PipelineRun(self.context, self.stages)

    def discover(self) -> list[BarrierPointSelection]:
        """Run the x86_64-side stages and return the barrier point sets.

        Returns one :class:`BarrierPointSelection` per discovery run;
        thread-interleaving jitter makes them differ, reproducing the
        min/max spread of Table III.
        """
        prefix = []
        for stage in self.stages:
            prefix.append(stage)
            if "selections" in stage.outputs:
                break
        else:
            raise RuntimeError("no stage in this pipeline outputs 'selections'")
        self._execute(prefix, None)
        return self.context.require("selections")

    def evaluate(
        self,
        selection: BarrierPointSelection,
        isa: ISA,
        machine: Machine | None = None,
    ) -> EvaluationResult:
        """Reconstruct and validate one barrier point set on one platform.

        Raises
        ------
        CrossArchitectureMismatch
            If the target executes a different number of barrier points
            than the discovery architecture (Section V-B's HPGMG-FV
            limitation).
        """
        return evaluate_selection(
            self.context, selection, machine or machine_for(isa), isa
        )

    def evaluate_many(
        self,
        selections: list[BarrierPointSelection],
        isa: ISA,
        machine: Machine | None = None,
    ) -> list[EvaluationResult]:
        """Evaluate several barrier point sets on one platform."""
        return [self.evaluate(selection, isa, machine) for selection in selections]


class PipelineBuilder:
    """Fluent construction of a :class:`StagePipeline`.

    Every ``with_*``/``on`` call returns the builder, so a pipeline
    reads as one expression; ``build`` materialises the pipeline and
    ``run`` additionally executes it.

    Example
    -------
    >>> from repro.api import PipelineBuilder
    >>> builder = PipelineBuilder("MCB", threads=4).on("x86_64")
    >>> builder.without_stage("validate").build().threads
    4
    """

    def __init__(
        self,
        workload,
        threads: int = 8,
        *,
        vectorised: bool = False,
        config: PipelineConfig | None = None,
    ) -> None:
        self._app = _resolve_workload(workload)
        self._threads = threads
        self._vectorised = vectorised
        self._config = config or PipelineConfig()
        self._stages: list[Stage] = default_stages()
        self._targets: list[Machine] = []
        self._discovery_isa = ISA.X86_64

    def with_config(self, **overrides) -> "PipelineBuilder":
        """Replace :class:`PipelineConfig` fields (seed, simpoint, ...)."""
        self._config = replace(self._config, **overrides)
        return self

    def with_stage(self, stage: Stage, replaces: str | None = None) -> "PipelineBuilder":
        """Swap in a stage, replacing the one sharing its name.

        ``replaces`` substitutes a differently-named stage (a registered
        third-party clustering stage standing in for ``cluster``); a
        stage matching nothing is appended at the end of the graph.
        """
        needle = replaces or stage.name
        for index, existing in enumerate(self._stages):
            if existing.name == needle:
                self._stages[index] = stage
                return self
        self._stages.append(stage)
        return self

    def without_stage(self, name: str) -> "PipelineBuilder":
        """Drop one stage from the graph (partial pipelines)."""
        self._stages = [stage for stage in self._stages if stage.name != name]
        return self

    def on(self, *targets) -> "PipelineBuilder":
        """Add evaluation targets: Machines, ISAs, or registered names."""
        self._targets.extend(_resolve_target(target) for target in targets)
        return self

    def build(self) -> StagePipeline:
        """Materialise the pipeline (nothing executes yet)."""
        return StagePipeline(
            self._app,
            self._threads,
            self._vectorised,
            self._config,
            stages=list(self._stages),
            targets=tuple(self._targets),
            discovery_isa=self._discovery_isa,
        )

    def run(self, store: StageStore | None = None) -> PipelineRun:
        """Build and execute the full graph."""
        return self.build().run(store)


def build_pipeline(
    workload,
    threads: int = 8,
    *,
    vectorised: bool = False,
    config: PipelineConfig | None = None,
) -> PipelineBuilder:
    """Start a fluent pipeline over one (workload, threads) configuration.

    ``workload`` may be a registry name (case-insensitive), a workload
    class, or a ready instance.  With all-default stages the resulting
    pipeline is bit-identical to the legacy ``BarrierPointPipeline``.

    Example
    -------
    >>> from repro.api import ClusterStage, build_pipeline
    >>> pipeline = (
    ...     build_pipeline("miniFE", threads=8)
    ...     .with_stage(ClusterStage(max_k=10))
    ...     .on("ARMv8")
    ...     .build()
    ... )
    >>> [stage.name for stage in pipeline.stages][:3]
    ['profile', 'signature', 'cluster']
    """
    return PipelineBuilder(
        workload, threads, vectorised=vectorised, config=config
    )
