"""Strong-scaling studies on the stage API.

The paper evaluates representative regions at a fixed team width per
table; :class:`ScalingStudy` turns the thread count into a first-class
study axis and asks the follow-up question — *does the representative
region stay representative as the team scales?* — by sweeping one
workload across thread counts × machines through the very same
registered stage graph every other study composes (profile → signature
→ cluster → select → measure → reconstruct → validate).

Per (machine, threads) cell the study reports:

* **wall cycles** — the slowest thread's mean clean-ROI cycle count,
  which under barrier synchronisation is the region's wall-clock;
* **speedup / parallel efficiency** — wall(1) / wall(t), and that
  divided by t (computed by :class:`ScalingResult` from the cells);
* **barrier-region CPI error** — the relative error of the CPI derived
  from the best barrier point set's reconstruction against the full
  run's CPI at that thread count: the scaling-robustness figure of
  merit.

Team widths above a machine's hardware contexts are reported as
unsupported (:meth:`ScalingStudy.unsupported`) rather than scheduled —
oversubscription is outside the paper's scatter-first pinning protocol
(see :meth:`repro.hw.machines.Machine.validate_threads`).

The grid form of this study (every evaluated app, scheduled cells,
rendered tables) lives in :mod:`repro.experiments.scaling`; this module
is the single-workload public API and the computation both share.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api.builder import PipelineRun, StagePipeline, _resolve_target, _resolve_workload
from repro.api.types import PipelineConfig
from repro.exec.stagestore import StageStore
from repro.hw.machines import APM_XGENE, ARMV8_IN_ORDER, INTEL_I7_3770, Machine
from repro.hw.pmu import CYCLES, INSTRUCTIONS

__all__ = [
    "SCALING_THREAD_COUNTS",
    "SCALING_MACHINES",
    "BestRunMetrics",
    "ScalingCell",
    "ScalingResult",
    "ScalingStudy",
    "best_run_metrics",
    "run_scaling_cell",
    "unsupported_reason",
]

#: The strong-scaling sweep's team widths.  16 exceeds every Table II
#: machine's hardware contexts and renders as an unsupported row — the
#: sweep states its own applicability limit instead of hiding it.
SCALING_THREAD_COUNTS = (1, 2, 4, 8, 16)

#: Default machine axis: both Table II platforms plus the Section VIII
#: in-order core, all taken from the open machine registry.
SCALING_MACHINES = (INTEL_I7_3770.name, APM_XGENE.name, ARMV8_IN_ORDER.name)


def unsupported_reason(machine: Machine) -> str:
    """Why a width beyond the machine's contexts is not scheduled.

    The single source of the reason string every consumer renders and
    tests match against (the API's ``ScalingResult.unsupported`` and
    the ``repro scaling`` table rows).
    """
    return f"exceeds {machine.max_threads} hardware contexts"


@dataclass(frozen=True)
class ScalingCell:
    """One (application, machine, threads) point of a scaling study.

    Attributes
    ----------
    app / machine / threads:
        The cell's coordinates.
    k / total_barrier_points:
        Barrier points selected by the best (lowest primary error) set
        at this width, and the total dynamic barrier points.
    wall_mcycles:
        Slowest thread's mean clean-ROI cycles, in millions — the
        region's wall-clock under barrier synchronisation.
    instructions:
        Mean clean-ROI instructions summed over threads.
    cpi_true / cpi_estimate:
        Aggregate cycles-per-instruction of the full run and of the
        barrier-point reconstruction.
    cpi_error_pct:
        ``100 × |cpi_estimate - cpi_true| / cpi_true`` — how well the
        representative region tracks the full run at this width.
    failure:
        Non-empty when the methodology could not be applied on this
        machine (barrier-sequence mismatch); every numeric field is
        zero in that case.
    """

    app: str
    machine: str
    threads: int
    k: int
    total_barrier_points: int
    wall_mcycles: float
    instructions: float
    cpi_true: float
    cpi_estimate: float
    cpi_error_pct: float
    failure: str = ""

    def to_payload(self) -> dict:
        """JSON-shaped payload for the scheduler / process boundary."""
        return {
            "app": self.app,
            "machine": self.machine,
            "threads": int(self.threads),
            "k": int(self.k),
            "total_barrier_points": int(self.total_barrier_points),
            "wall_mcycles": float(self.wall_mcycles),
            "instructions": float(self.instructions),
            "cpi_true": float(self.cpi_true),
            "cpi_estimate": float(self.cpi_estimate),
            "cpi_error_pct": float(self.cpi_error_pct),
            "failure": self.failure,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "ScalingCell":
        """Rebuild a cell from :meth:`to_payload` output."""
        return cls(**payload)

    @classmethod
    def failed(
        cls, app: str, machine: str, threads: int, reason: str
    ) -> "ScalingCell":
        """An all-zeros cell recording why the methodology failed here."""
        return cls(
            app=app,
            machine=machine,
            threads=threads,
            k=0,
            total_barrier_points=0,
            wall_mcycles=0.0,
            instructions=0.0,
            cpi_true=0.0,
            cpi_estimate=0.0,
            cpi_error_pct=0.0,
            failure=reason,
        )


@dataclass(frozen=True)
class BestRunMetrics:
    """Best-selection figures of merit of one machine's evaluation.

    The common core both the scaling and the rank studies derive their
    cells from: the lowest-primary-error barrier point set and the
    wall/CPI accounting of its reconstruction.  See
    :func:`best_run_metrics`.
    """

    selection: object
    wall_cycles: float
    instructions: float
    cpi_true: float
    cpi_estimate: float

    @property
    def cpi_error_pct(self) -> float:
        """``100 × |cpi_estimate - cpi_true| / cpi_true``."""
        return 100.0 * abs(self.cpi_estimate - self.cpi_true) / self.cpi_true


def best_run_metrics(run: PipelineRun, machine: Machine) -> BestRunMetrics | None:
    """Figures of merit of one machine's best selection, or None on failure.

    Picks the lowest primary-error barrier point set of the run and
    derives the measured wall cycles (slowest context's clean-ROI
    cycles), total instructions, and the true/reconstructed CPI.
    Returns None when the methodology could not be applied on this
    machine; the reason lives in ``run.failures[machine.name]``.
    """
    evaluations = run.evaluations.get(machine.name)
    if evaluations is None:
        return None

    best = min(
        range(len(evaluations)),
        key=lambda i: evaluations[i].report.primary_error,
    )
    context = run.context
    reference = context.require("measurements")[machine.name]["reference"]
    estimate = context.require("estimates")[machine.name][best]["totals"]

    ref_instr = float(reference[:, INSTRUCTIONS].sum())
    return BestRunMetrics(
        selection=evaluations[best].selection,
        wall_cycles=float(reference[:, CYCLES].max()),
        instructions=ref_instr,
        cpi_true=float(reference[:, CYCLES].sum()) / ref_instr,
        cpi_estimate=float(estimate[:, CYCLES].sum())
        / float(estimate[:, INSTRUCTIONS].sum()),
    )


def _cell_from_run(run: PipelineRun, app_name: str, machine: Machine, threads: int) -> ScalingCell:
    """Derive one machine's scaling cell from an executed stage graph."""
    metrics = best_run_metrics(run, machine)
    if metrics is None:
        return ScalingCell.failed(
            app_name, machine.name, threads, run.failures[machine.name]
        )
    return ScalingCell(
        app=app_name,
        machine=machine.name,
        threads=threads,
        k=metrics.selection.k,
        total_barrier_points=metrics.selection.n_barrier_points,
        wall_mcycles=metrics.wall_cycles / 1e6,
        instructions=metrics.instructions,
        cpi_true=metrics.cpi_true,
        cpi_estimate=metrics.cpi_estimate,
        cpi_error_pct=metrics.cpi_error_pct,
    )


def run_scaling_cell(
    workload,
    machine,
    threads: int,
    config: PipelineConfig | None = None,
    store: StageStore | None = None,
) -> ScalingCell:
    """Execute one scaling cell through the registered stage graph.

    Example
    -------
    >>> from repro.api import run_scaling_cell, PipelineConfig
    >>> from repro.hw.measure import MeasurementProtocol
    >>> fast = PipelineConfig(
    ...     discovery_runs=1, protocol=MeasurementProtocol(repetitions=2)
    ... )
    >>> cell = run_scaling_cell("MCB", "Intel Core i7-3770", 2, fast)
    >>> cell.threads, cell.k >= 1
    (2, True)

    Discovery runs on x86_64 (the paper's Section V-A rule) at the
    cell's thread count; measurement, reconstruction and validation
    target the cell's machine.  With a :class:`StageStore`, the
    x86_64-side stage payloads are shared by every machine at the same
    (app, threads) — and with the crossarch cells' scalar half — so a
    grid sweep executes each discovery exactly once.
    """
    app = _resolve_workload(workload)
    machine = _resolve_target(machine)
    config = config or PipelineConfig()
    pipeline = StagePipeline(app, threads, False, config, targets=(machine,))
    return _cell_from_run(pipeline.run(store), app.name, machine, threads)


@dataclass(frozen=True)
class ScalingResult:
    """All cells of one application's scaling study.

    Attributes
    ----------
    app:
        The workload.
    machines / thread_counts:
        The axes, in sweep order.
    cells:
        ``(machine name, threads)`` → :class:`ScalingCell` for every
        supported grid point.
    unsupported:
        ``(machine name, threads)`` → reason, for widths beyond a
        machine's hardware contexts.
    """

    app: str
    machines: tuple[str, ...]
    thread_counts: tuple[int, ...]
    cells: dict
    unsupported: dict

    def cell(self, machine: str, threads: int) -> ScalingCell:
        """One grid point (raises ``KeyError`` for unsupported widths)."""
        return self.cells[(machine, threads)]

    def speedup(self, machine: str, threads: int) -> float | None:
        """wall(1) / wall(threads) on one machine; None without a base."""
        base = self.cells.get((machine, 1))
        cell = self.cells.get((machine, threads))
        if base is None or cell is None or cell.failure or base.failure:
            return None
        if cell.wall_mcycles == 0.0:
            return None
        return base.wall_mcycles / cell.wall_mcycles

    def efficiency_pct(self, machine: str, threads: int) -> float | None:
        """Parallel efficiency: speedup over threads, in percent."""
        speedup = self.speedup(machine, threads)
        if speedup is None:
            return None
        return 100.0 * speedup / threads


class ScalingStudy:
    """Sweep one workload's thread counts × machines through the stages.

    The public, in-process form of the strong-scaling study::

        from repro.api import ScalingStudy

        result = ScalingStudy("miniFE", thread_counts=(1, 2, 4, 8)).run()
        result.efficiency_pct("ARMv8 AppliedMicro X-Gene", 8)

    Every cell composes the same registered stage graph as
    ``build_pipeline`` — third-party stages swapped into the stage
    registry, and machines added to the machine registry, flow through
    unchanged.  The multi-application scheduled grid behind ``repro
    scaling`` lives in :mod:`repro.experiments.scaling` and executes
    the same :func:`run_scaling_cell`.

    Parameters
    ----------
    workload:
        Registry name, workload class, or instance.
    machines:
        Machine axis: registered names, ISAs, or Machine instances.
    thread_counts:
        Team widths to sweep; widths a machine cannot host scatter-first
        are reported under :attr:`ScalingResult.unsupported`.
    config:
        Shared stage configuration (protocol scale, seed, ...).
    """

    def __init__(
        self,
        workload,
        machines=SCALING_MACHINES,
        thread_counts: tuple[int, ...] = SCALING_THREAD_COUNTS,
        config: PipelineConfig | None = None,
    ) -> None:
        self.app = _resolve_workload(workload)
        self.machines: tuple[Machine, ...] = tuple(
            _resolve_target(machine) for machine in machines
        )
        self.thread_counts = tuple(thread_counts)
        self.config = config or PipelineConfig()

    def grid(self) -> list[tuple[Machine, int]]:
        """The supported (machine, threads) cells, in sweep order."""
        return [
            (machine, threads)
            for machine in self.machines
            for threads in self.thread_counts
            if machine.supports_threads(threads)
        ]

    def unsupported(self) -> dict[tuple[str, int], str]:
        """(machine name, threads) → reason, for unplaceable widths."""
        return {
            (machine.name, threads): unsupported_reason(machine)
            for machine in self.machines
            for threads in self.thread_counts
            if not machine.supports_threads(threads)
        }

    def run(self, store: StageStore | None = None) -> ScalingResult:
        """Execute every supported cell (stage-cached when given a store).

        One stage graph runs per thread count, targeting every machine
        that can host the width — the x86_64 discovery executes once
        per width and only measurement/validation fan out across the
        machine axis, with or without a store.  Use ``repro scaling``
        for the scheduled multi-application grid.
        """
        cells: dict[tuple[str, int], ScalingCell] = {}
        for threads in self.thread_counts:
            machines = tuple(
                machine
                for machine in self.machines
                if machine.supports_threads(threads)
            )
            if not machines:
                continue
            pipeline = StagePipeline(
                self.app, threads, False, self.config, targets=machines
            )
            run = pipeline.run(store)
            for machine in machines:
                cells[(machine.name, threads)] = _cell_from_run(
                    run, self.app.name, machine, threads
                )
        return ScalingResult(
            app=self.app.name,
            machines=tuple(machine.name for machine in self.machines),
            thread_counts=self.thread_counts,
            cells=cells,
            unsupported=self.unsupported(),
        )
