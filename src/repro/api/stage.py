"""The Stage protocol: one composable step of the methodology.

A stage is a named transformation over a :class:`~repro.api.context.StageContext`:
it declares which artifacts it consumes (``inputs``) and publishes
(``outputs``), contributes the configuration knobs it depends on to the
content address of its payload (``cache_key``), and — when
``cacheable`` — can round-trip its outputs through a JSON payload so the
execution layer can cache the pipeline at stage granularity.

Stage identity is the chain of cache keys up to and including a stage,
so changing a knob re-runs exactly the stages downstream of it: a
``maxK`` change re-clusters but reuses the cached profile and signature
payloads.
"""

from __future__ import annotations

import abc

from repro.api.context import StageContext

__all__ = ["Stage"]


class Stage(abc.ABC):
    """Base class of pipeline stages (subclass and register to extend).

    Example
    -------
    A minimal custom stage that derives an artifact from the built-in
    ``selections`` and plugs into any pipeline::

        from repro.api import Stage, register_stage

        @register_stage
        class CountStage(Stage):
            name = "count"
            inputs = ("selections",)
            outputs = ("selection_sizes",)
            description = "record each selection's representative count"

            def run(self, ctx):
                ctx.put("selection_sizes",
                        [s.k for s in ctx.require("selections")])
                return ctx

        build_pipeline("miniFE").with_stage(CountStage()).run()

    Class attributes
    ----------------
    name:
        Stage identity; a builder's ``with_stage`` replaces the stage
        holding the same name, so a custom clustering stage subclasses
        with ``name = "cluster"`` (or registers under a new name and is
        inserted explicitly).
    inputs / outputs:
        Artifact names consumed / published, for introspection,
        CLI listings and graph validation.
    description:
        One line for ``repro stages``.
    cacheable:
        Whether the execution layer may persist this stage's payload.
    """

    name: str = ""
    inputs: tuple[str, ...] = ()
    outputs: tuple[str, ...] = ()
    description: str = ""
    cacheable: bool = False

    @abc.abstractmethod
    def run(self, ctx: StageContext) -> StageContext:
        """Execute the stage, publishing ``outputs`` into the context."""

    def cache_key(self, ctx: StageContext) -> dict:
        """JSON-shaped contribution to the stage's content address.

        Must cover every configuration knob that can change this stage's
        outputs *given identical inputs* — read from ``ctx.config`` or
        constructor overrides; upstream knobs are already in the address
        through the digest chain.
        """
        return {}

    def encode(self, ctx: StageContext) -> dict:
        """Payload tree reproducing this stage's outputs (cacheable only).

        JSON-shaped scalars/dicts/lists with raw :class:`numpy.ndarray`
        leaves — the store moves the arrays into the binary columnar
        plane (or the legacy base64 plane), so stages never serialise
        array data themselves.
        """
        raise NotImplementedError(f"stage {self.name!r} is not cacheable")

    def decode(self, payload: dict, ctx: StageContext) -> None:
        """Publish outputs from a cached payload instead of running.

        Arrays in ``payload`` may be read-only zero-copy views into the
        store's mmap; copy before mutating (pipeline stages never do).
        """
        raise NotImplementedError(f"stage {self.name!r} is not cacheable")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name!r}>"
