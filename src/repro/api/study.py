"""The cross-architectural study (Section VI) on the stage API.

For one application and thread count, :func:`run_crossarch` performs
the paper's four comparisons:

* ``x86_64``       — x86_64 scalar discovery → x86_64 scalar estimate
* ``ARMv8``        — x86_64 scalar discovery → ARMv8 scalar estimate
* ``x86_64-vect``  — x86_64 vector discovery → x86_64 vector estimate
* ``ARMv8-vect``   — x86_64 vector discovery → ARMv8 vector estimate

Per vectorisation setting it executes one stage graph targeting both
platforms, evaluates every discovered barrier point set on each, and
keeps the set with the lowest worst-case error across the performance
metrics and both platforms — the selection rule behind Figure 2 and
Table IV ("the barrier point sets with the lowest estimation errors").

Passing a :class:`~repro.exec.stagestore.StageStore` caches the study at
stage granularity: a clustering-knob change re-runs clustering onward
while the profile/signature payloads come straight from disk.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.api.builder import StagePipeline, _resolve_workload
from repro.api.types import EvaluationResult, PipelineConfig
from repro.core.errors import CrossArchitectureMismatch
from repro.core.selection import BarrierPointSelection
from repro.exec.stagestore import StageStore
from repro.hw.machines import machine_for
from repro.isa.descriptors import ISA

__all__ = ["CONFIG_LABELS", "ConfigResult", "CrossArchResult", "run_crossarch"]

#: Evaluation order of the four configuration labels (paper's legend).
CONFIG_LABELS = ("x86_64", "x86_64-vect", "ARMv8", "ARMv8-vect")


@dataclass(frozen=True)
class ConfigResult:
    """Best-set validation outcome for one configuration label."""

    label: str
    evaluation: EvaluationResult

    @property
    def selection(self) -> BarrierPointSelection:
        """The barrier point set used for this configuration."""
        return self.evaluation.selection

    @property
    def report(self):
        """The estimation errors."""
        return self.evaluation.report


@dataclass
class CrossArchResult:
    """Everything the paper reports for one (application, threads) cell.

    Attributes
    ----------
    app_name / threads:
        The configuration.
    configs:
        Label → :class:`ConfigResult` for each configuration that could
        be evaluated.
    failures:
        Label → explanation for configurations the methodology could
        not be applied to (e.g. HPGMG-FV's sequence mismatch on ARMv8).
    selections:
        Vectorised? → all discovered barrier point sets (Table III's
        min/max derive from these across configurations).
    """

    app_name: str
    threads: int
    configs: dict[str, ConfigResult] = field(default_factory=dict)
    failures: dict[str, str] = field(default_factory=dict)
    selections: dict[bool, list[BarrierPointSelection]] = field(default_factory=dict)

    def config(self, label: str) -> ConfigResult:
        """Result for one configuration label; raises if it failed."""
        if label in self.failures:
            raise CrossArchitectureMismatch(self.app_name, -1, -1)
        return self.configs[label]

    def selection_sizes(self) -> list[int]:
        """Barrier points selected (k) across every discovery run/setting."""
        return [
            s.k for sels in self.selections.values() for s in sels
        ]

    @property
    def total_barrier_points(self) -> int:
        """Total dynamic barrier points of the x86_64 execution."""
        some = next(iter(self.selections.values()))
        return some[0].n_barrier_points

    def best_selection(self, vectorised: bool) -> BarrierPointSelection:
        """The reported (lowest-error) set of one vectorisation setting."""
        label = "x86_64-vect" if vectorised else "x86_64"
        return self.configs[label].selection


def run_crossarch(
    workload,
    threads: int,
    config: PipelineConfig | None = None,
    store: StageStore | None = None,
) -> CrossArchResult:
    """Execute discovery + evaluation for all four configurations.

    Example
    -------
    >>> from repro.api import run_crossarch, PipelineConfig
    >>> from repro.hw.measure import MeasurementProtocol
    >>> fast = PipelineConfig(
    ...     discovery_runs=1, protocol=MeasurementProtocol(repetitions=2)
    ... )
    >>> result = run_crossarch("MCB", threads=2, config=fast)
    >>> sorted(result.configs)
    ['ARMv8', 'ARMv8-vect', 'x86_64', 'x86_64-vect']

    Parameters
    ----------
    workload:
        Registry name, workload class, or instance.
    threads:
        Team width (paper: 1, 2, 4 or 8).
    config:
        Pipeline parameters shared by both vectorisation settings.
    store:
        Optional stage-granular cache.
    """
    app = _resolve_workload(workload)
    config = config or PipelineConfig()
    result = CrossArchResult(app_name=app.name, threads=threads)
    targets = (machine_for(ISA.X86_64), machine_for(ISA.ARMV8))

    for vectorised in (False, True):
        pipeline = StagePipeline(
            app, threads, vectorised, config, targets=targets
        )
        run = pipeline.run(store)
        selections = run.selections
        result.selections[vectorised] = selections

        x86_label = pipeline.binary(ISA.X86_64).label
        arm_label = pipeline.binary(ISA.ARMV8).label

        x86_evals = run.evaluations[targets[0].name]
        arm_evals = run.evaluations.get(targets[1].name)
        if arm_evals is None:
            result.failures[arm_label] = run.failures[targets[1].name]

        # Rank sets on the performance metrics (cycles/instructions)
        # across both platforms; cache-miss anomalies are not tuned
        # away, matching the paper's reported behaviour.
        scores = []
        for idx in range(len(selections)):
            worst = x86_evals[idx].report.primary_error
            if arm_evals is not None:
                worst = max(worst, arm_evals[idx].report.primary_error)
            scores.append(worst)
        best = min(range(len(selections)), key=scores.__getitem__)

        result.configs[x86_label] = ConfigResult(
            label=x86_label, evaluation=x86_evals[best]
        )
        if arm_evals is not None:
            result.configs[arm_label] = ConfigResult(
                label=arm_label, evaluation=arm_evals[best]
            )
    return result
