"""The SimPoint model-selection pipeline.

Project → sweep k → score with BIC → keep the smallest k whose score
reaches ``bic_threshold`` of the way from the worst to the best score.
The paper "follow[s] suggestions given in the original BarrierPoint
paper for the k-means parameters"; the defaults here mirror those:
maxK = 20 (Table III's selections never exceed 20), ~15 projected
dimensions, 0.9 BIC threshold.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.clustering.bic import bic_score
from repro.clustering.kmeans import KMeansResult, kmeans
from repro.clustering.projection import random_projection

__all__ = ["SimPointOptions", "ClusteringChoice", "run_simpoint"]


@dataclass(frozen=True)
class SimPointOptions:
    """Knobs of the SimPoint-style clustering sweep.

    Attributes
    ----------
    max_k:
        Largest cluster count examined (BarrierPoint: 20).  A value of
        1 is accepted programmatically (ablations sweep it) but
        degenerates: the sweep examines only the one-cluster model and
        "selects" a single representative whose multiplier covers the
        whole region.  The CLI therefore rejects ``--max-k 1`` up
        front with an explicit error.
    projected_dims:
        Random-projection target dimensionality.
    bic_threshold:
        Fraction of the (min..max) BIC span a k must reach.
    n_init / max_iter:
        k-means restarts per k and Lloyd iteration cap.
    k_stride:
        Optional thinning of the k grid above ``k_dense`` (sweeping all
        of 1..20 on 9,840 LULESH signatures × 10 discovery runs is
        wasteful; SimPoint itself supports sub-sampled k grids).
    k_dense:
        All k up to this value are always examined.
    algorithm:
        ``"exact"`` (Lloyd, the golden oracle) or ``"minibatch"``
        (:func:`repro.clustering.minibatch.minibatch_kmeans` — seeded,
        deterministic batch order; the full-scale default, where
        touching every signature per Lloyd iteration dominates the
        stage).
    batch_size:
        Mini-batch size when ``algorithm="minibatch"``.
    """

    max_k: int = 20
    projected_dims: int = 15
    bic_threshold: float = 0.9
    n_init: int = 2
    max_iter: int = 30
    k_stride: int = 2
    k_dense: int = 8
    algorithm: str = "exact"
    batch_size: int = 1024

    def __post_init__(self) -> None:
        if self.max_k < 1:
            raise ValueError(f"max_k must be >= 1, got {self.max_k}")
        if not 0.0 < self.bic_threshold <= 1.0:
            raise ValueError(f"bic_threshold must be in (0, 1], got {self.bic_threshold}")
        if self.algorithm not in ("exact", "minibatch"):
            raise ValueError(
                f"algorithm must be 'exact' or 'minibatch', got {self.algorithm!r}"
            )
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {self.batch_size}")

    def k_grid(self, n_points: int) -> list[int]:
        """The cluster counts to examine for ``n_points`` signatures.

        Capped at half the signature count: clustering ten barrier
        points into ten "clusters" is degenerate, and SimPoint practice
        keeps maxK well below the interval count.  Note the cap floors
        at 1 — with ``max_k=1`` the grid is just ``[1]`` and the BIC
        threshold has nothing to discriminate (see the ``max_k``
        attribute note).
        """
        upper = min(self.max_k, max(n_points // 2, 1))
        grid = list(range(1, min(self.k_dense, upper) + 1))
        k = self.k_dense + self.k_stride
        while k <= upper:
            grid.append(k)
            k += self.k_stride
        if grid[-1] != upper:
            grid.append(upper)
        return grid


@dataclass(frozen=True)
class ClusteringChoice:
    """Outcome of one SimPoint sweep.

    Attributes
    ----------
    k:
        Chosen cluster count.
    result:
        The winning k-means state.
    projected:
        The projected signatures the clustering ran on (kept so the
        selection step can find the point closest to each centroid).
    bic_by_k:
        BIC score of the best clustering at each examined k.
    """

    k: int
    result: KMeansResult
    projected: np.ndarray
    bic_by_k: dict[int, float]


def run_simpoint(
    signatures: np.ndarray,
    weights: np.ndarray,
    gen: np.random.Generator,
    options: SimPointOptions | None = None,
) -> ClusteringChoice:
    """Cluster signature vectors the way SimPoint 3.2 does.

    Parameters
    ----------
    signatures:
        ``(n_bp, D)`` combined signature matrix.
    weights:
        ``(n_bp,)`` instruction weights.
    gen:
        Seeded generator (projection + k-means inits).
    options:
        Sweep parameters; defaults follow the paper.

    Returns
    -------
    ClusteringChoice
        Smallest k reaching the BIC threshold, with its clustering.
    """
    options = options or SimPointOptions()
    signatures = np.asarray(signatures, dtype=float)
    if signatures.ndim != 2 or signatures.shape[0] == 0:
        raise ValueError(f"signatures must be non-empty 2-D, got {signatures.shape}")

    projected = random_projection(signatures, options.projected_dims, gen)
    grid = options.k_grid(projected.shape[0])

    results: dict[int, KMeansResult] = {}
    bic_by_k: dict[int, float] = {}
    for k in grid:
        if options.algorithm == "minibatch":
            from repro.clustering.minibatch import minibatch_kmeans

            result = minibatch_kmeans(
                projected,
                k,
                gen,
                weights=weights,
                batch_size=options.batch_size,
                n_init=options.n_init,
            )
        else:
            result = kmeans(
                projected,
                k,
                gen,
                weights=weights,
                n_init=options.n_init,
                max_iter=options.max_iter,
            )
        results[k] = result
        bic_by_k[k] = bic_score(projected, result, weights)

    scores = np.array([bic_by_k[k] for k in grid])
    lo, hi = float(scores.min()), float(scores.max())
    if hi - lo <= 0:
        chosen = grid[0]
    else:
        cutoff = lo + options.bic_threshold * (hi - lo)
        chosen = next(k for k, s in zip(grid, scores, strict=True) if s >= cutoff)

    return ClusteringChoice(
        k=chosen, result=results[chosen], projected=projected, bic_by_k=bic_by_k
    )
