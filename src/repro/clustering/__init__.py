"""SimPoint 3.2-equivalent clustering machinery.

BarrierPoint feeds its signature vectors to the SimPoint toolkit:
random-project to ~15 dimensions, run k-means for k = 1..maxK, score
each k with the Bayesian Information Criterion, and keep the smallest k
whose BIC reaches a fixed fraction of the best score.  This package
implements that pipeline from scratch (no sklearn):

* :mod:`repro.clustering.projection` — seeded Gaussian random projection.
* :mod:`repro.clustering.kmeans` — weighted k-means with k-means++
  seeding and empty-cluster reseeding.
* :mod:`repro.clustering.bic` — the Pelleg-Moore style spherical
  Gaussian BIC used by SimPoint.
* :mod:`repro.clustering.simpoint` — the k sweep and selection rule.
"""

from repro.clustering.bic import bic_score
from repro.clustering.kmeans import KMeansResult, kmeans
from repro.clustering.projection import random_projection
from repro.clustering.simpoint import ClusteringChoice, SimPointOptions, run_simpoint

__all__ = [
    "random_projection",
    "KMeansResult",
    "kmeans",
    "bic_score",
    "SimPointOptions",
    "ClusteringChoice",
    "run_simpoint",
]
