"""Bayesian Information Criterion scoring for k-means models.

SimPoint selects the number of clusters by scoring each k-means
clustering with the BIC under a spherical Gaussian mixture model
(the X-means formulation of Pelleg & Moore, which SimPoint 3.2 adopts)
and keeping the smallest k that achieves a fixed fraction of the best
observed score.  This module provides the (weighted) score; the
selection rule lives in :mod:`repro.clustering.simpoint`.
"""

from __future__ import annotations

import numpy as np

from repro.clustering.kmeans import KMeansResult

__all__ = ["bic_score"]


def bic_score(
    data: np.ndarray,
    result: KMeansResult,
    weights: np.ndarray | None = None,
) -> float:
    """BIC of a clustering; larger is better.

    Parameters
    ----------
    data:
        ``(n, d)`` points the clustering was computed on.
    result:
        A converged :class:`~repro.clustering.kmeans.KMeansResult`.
    weights:
        Optional point weights; the effective sample size then becomes
        the total weight, mirroring the weighted k-means objective.

    Notes
    -----
    Log-likelihood of the spherical mixture with MLE variance
    ``sigma2 = inertia / (d * (R - k))``::

        ll = sum_i R_i log(R_i / R) - (R * d / 2) log(2 pi sigma2) - (R - k) * d / 2

    and ``BIC = ll - (p / 2) log R`` with ``p = k (d + 1)`` free
    parameters.
    """
    data = np.asarray(data, dtype=float)
    n, d = data.shape
    if weights is None:
        weights = np.ones(n)
    else:
        weights = np.asarray(weights, dtype=float)

    k = result.k
    total = float(weights.sum())
    if total <= 0:
        raise ValueError("total weight must be positive")

    cluster_weight = np.bincount(result.labels, weights=weights, minlength=k)
    occupied = cluster_weight > 0

    dof = max(total - k, 1e-9)
    # Variance floor: signatures carry finite measurement precision, so a
    # clustering can never legitimately explain them to zero variance.
    # Without the floor, k == n degenerates (sigma2 -> 0, BIC -> +inf).
    scale = float((data**2).sum(axis=1).mean())
    sigma2 = max(result.inertia / (d * dof), 1e-7 * scale, 1e-30)

    ll = float(
        (cluster_weight[occupied] * np.log(cluster_weight[occupied] / total)).sum()
    )
    ll -= 0.5 * total * d * np.log(2.0 * np.pi * sigma2)
    ll -= 0.5 * (total - k) * d

    n_params = k * (d + 1)
    return ll - 0.5 * n_params * np.log(total)
