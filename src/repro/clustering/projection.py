"""Seeded Gaussian random projection.

SimPoint projects high-dimensional basic-block vectors down to ~15
dimensions before clustering; the Johnson-Lindenstrauss lemma guarantees
pairwise distances survive with small distortion, and the projection
makes the k-means sweep cheap regardless of how many static blocks an
application has.
"""

from __future__ import annotations

import numpy as np

__all__ = ["random_projection"]


def random_projection(
    data: np.ndarray, dims: int, gen: np.random.Generator
) -> np.ndarray:
    """Project rows of ``data`` to ``dims`` dimensions.

    Parameters
    ----------
    data:
        ``(n, D)`` matrix of signatures.
    dims:
        Target dimensionality (SimPoint's default region is ~15).  If
        ``D <= dims`` the data is returned unchanged (already small).
    gen:
        Seeded generator; different discovery runs use different
        projections, one source of the run-to-run selection variation.

    Returns
    -------
    numpy.ndarray
        ``(n, dims)`` projected matrix.
    """
    data = np.asarray(data, dtype=float)
    if data.ndim != 2:
        raise ValueError(f"data must be 2-D, got shape {data.shape}")
    if dims < 1:
        raise ValueError(f"dims must be >= 1, got {dims}")
    n_features = data.shape[1]
    if n_features <= dims:
        return data.copy()
    matrix = gen.standard_normal((n_features, dims)) / np.sqrt(dims)
    return data @ matrix
