"""Mini-batch k-means: web-scale clustering for paper-scale grids.

Lloyd's algorithm touches every signature every iteration; at paper
scale (LULESH: ~9,840 barrier points × 10 discovery runs × a k sweep)
that full-data pass dominates the clustering stage.  Mini-batch k-means
(Sculley, WWW 2010) replaces it with small random batches and per-center
convex updates — each center moves toward its batch mean with a
learning rate that decays as the center accumulates weight, so the
stream of batches converges to a fixed point near the Lloyd optimum at
a fraction of the touched-point count.

Determinism is non-negotiable here (the whole repository reproduces
bit-identically from one seed), so the batch order is drawn from the
caller's seeded generator and nothing else: same seed, same batches,
same centers, same labels — on every backend and at every ``--jobs``.
The exact sweep (:func:`repro.clustering.kmeans.kmeans`) stays the
golden oracle: the quick-scale protocol keeps using it, and the tests
bound the mini-batch inertia against the exact inertia on shared
inputs.
"""

from __future__ import annotations

import numpy as np

from repro.clustering.kmeans import (
    KMeansResult,
    _kmeanspp_init,
    _squared_distances,
    kmeans,
)

__all__ = ["minibatch_kmeans"]

#: Below this point count a mini-batch covers the data anyway; the exact
#: solver is both faster and the oracle, so small inputs use it directly.
_EXACT_FALLBACK = 4


def minibatch_kmeans(
    data: np.ndarray,
    k: int,
    gen: np.random.Generator,
    weights: np.ndarray | None = None,
    batch_size: int = 1024,
    n_init: int = 2,
    max_batches: int = 100,
    tol: float = 1e-4,
) -> KMeansResult:
    """Cluster ``data`` with seeded, deterministic mini-batch k-means.

    Parameters
    ----------
    data:
        ``(n, d)`` points (already projected).
    k:
        Cluster count; must not exceed ``n``.
    gen:
        Seeded generator — sole source of batch order and seeding, so
        the result is a pure function of (data, k, weights, seed).
    weights:
        Optional ``(n,)`` non-negative point weights.
    batch_size:
        Points per batch; when the data is at most ``_EXACT_FALLBACK``
        batches small, the exact solver runs instead (it is cheaper and
        exactly reproduces the oracle the tests compare against).
    n_init / max_batches / tol:
        Restarts, batch-step cap per restart, and the center-shift
        Frobenius norm below which a restart stops early.

    Returns
    -------
    KMeansResult
        Final labels/centers from one full assignment pass, with the
        same weighted inertia definition as the exact solver.
    """
    data = np.asarray(data, dtype=float)
    n = data.shape[0]
    if not 1 <= k <= n:
        raise ValueError(f"k must be in [1, {n}], got {k}")
    if batch_size < 1:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    if n <= _EXACT_FALLBACK * batch_size:
        return kmeans(data, k, gen, weights=weights, n_init=n_init)
    if weights is None:
        weights = np.ones(n)
    else:
        weights = np.asarray(weights, dtype=float)
        if weights.shape != (n,) or np.any(weights < 0) or weights.sum() == 0:
            raise ValueError("weights must be (n,) non-negative with positive sum")

    data_sq = (data**2).sum(axis=1)
    best: KMeansResult | None = None
    for _ in range(max(n_init, 1)):
        # Seed on a batch-sized random subsample: k-means++ on the full
        # data would reintroduce the O(n·k) pass this solver avoids.
        seed_idx = gen.choice(n, size=min(n, max(batch_size, 8 * k)), replace=False)
        centers = _kmeanspp_init(
            data[seed_idx], weights[seed_idx], k, gen, data_sq[seed_idx]
        )
        counts = np.zeros(k)
        steps = 0
        for steps in range(1, max_batches + 1):  # noqa: B007  # read after the loop
            batch_idx = gen.integers(0, n, size=batch_size)
            batch = data[batch_idx]
            batch_w = weights[batch_idx]
            labels = _squared_distances(
                batch, centers, data_sq[batch_idx]
            ).argmin(axis=1)
            np.add.at(counts, labels, batch_w)
            sums = np.zeros_like(centers)
            np.add.at(sums, labels, batch_w[:, None] * batch)
            batch_weight = np.bincount(labels, weights=batch_w, minlength=k)
            hit = batch_weight > 0
            # Per-center convex step toward the batch mean; the rate
            # decays as 1/accumulated-weight (Sculley's update), which
            # is what makes the stream of noisy batch means converge.
            eta = np.zeros(k)
            eta[hit] = batch_weight[hit] / counts[hit]
            target = np.where(
                hit[:, None], sums / np.maximum(batch_weight, 1e-300)[:, None], centers
            )
            moved = centers + eta[:, None] * (target - centers)
            shift = float(np.sqrt(((moved - centers) ** 2).sum()))
            centers = moved
            if shift <= tol:
                break
        # One full assignment pass defines labels and inertia exactly
        # as the oracle does, so inertias are directly comparable.
        d2 = _squared_distances(data, centers, data_sq)
        labels = d2.argmin(axis=1)
        inertia = float((weights * d2[np.arange(n), labels]).sum())
        result = KMeansResult(
            labels=labels, centers=centers, inertia=inertia, iterations=steps
        )
        if best is None or result.inertia < best.inertia:
            best = result
    assert best is not None
    return best
