"""Weighted k-means with k-means++ seeding.

Barrier points differ wildly in size (miniFE's dominant matvec region
versus its tiny dot products), so the clustering weighs each signature
by the instructions its barrier point executes — a small, fast region
should not pull a centroid as hard as the region that dominates runtime.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["KMeansResult", "kmeans"]


@dataclass(frozen=True)
class KMeansResult:
    """Converged k-means state.

    Attributes
    ----------
    labels:
        ``(n,)`` cluster index per point.
    centers:
        ``(k, d)`` centroids.
    inertia:
        Weighted sum of squared distances to assigned centroids.
    iterations:
        Lloyd iterations performed.
    """

    labels: np.ndarray
    centers: np.ndarray
    inertia: float
    iterations: int

    @property
    def k(self) -> int:
        """Number of clusters."""
        return int(self.centers.shape[0])


def _squared_distances(
    data: np.ndarray, centers: np.ndarray, data_sq: np.ndarray | None = None
) -> np.ndarray:
    """``(n, k)`` squared Euclidean distances (BLAS-friendly form).

    ``data_sq`` memoises ``(data**2).sum(axis=1)``: the k-means++ loop
    and every Lloyd iteration call this with the *same* points, and
    reusing the identical computed array is bit-identical to
    recomputing it while skipping the dominant O(n·d) term.
    """
    if data_sq is None:
        data_sq = (data**2).sum(axis=1)
    d2 = (
        data_sq[:, None]
        - 2.0 * data @ centers.T
        + (centers**2).sum(axis=1)[None, :]
    )
    return np.maximum(d2, 0.0)


def _kmeanspp_init(
    data: np.ndarray,
    weights: np.ndarray,
    k: int,
    gen: np.random.Generator,
    data_sq: np.ndarray | None = None,
) -> np.ndarray:
    """k-means++ seeding with probability ∝ weight × squared distance."""
    n = data.shape[0]
    if data_sq is None:
        data_sq = (data**2).sum(axis=1)
    centers = np.empty((k, data.shape[1]))
    first = gen.choice(n, p=weights / weights.sum())
    centers[0] = data[first]
    closest = _squared_distances(data, centers[:1], data_sq)[:, 0]
    for j in range(1, k):
        scores = weights * closest
        total = scores.sum()
        if total <= 0:  # all points coincide with chosen centers
            idx = int(gen.integers(0, n))
        else:
            idx = int(gen.choice(n, p=scores / total))
        centers[j] = data[idx]
        closest = np.minimum(
            closest, _squared_distances(data, centers[j : j + 1], data_sq)[:, 0]
        )
    return centers


def kmeans(
    data: np.ndarray,
    k: int,
    gen: np.random.Generator,
    weights: np.ndarray | None = None,
    n_init: int = 3,
    max_iter: int = 40,
    tol: float = 1e-7,
) -> KMeansResult:
    """Cluster ``data`` into ``k`` groups, best of ``n_init`` restarts.

    Parameters
    ----------
    data:
        ``(n, d)`` points (already projected).
    k:
        Cluster count; must not exceed ``n``.
    gen:
        Seeded generator for initialisation.
    weights:
        Optional ``(n,)`` non-negative point weights (instruction
        counts); defaults to uniform.
    n_init / max_iter / tol:
        Restart count, Lloyd iteration cap, and relative inertia
        improvement below which iteration stops.
    """
    data = np.asarray(data, dtype=float)
    n = data.shape[0]
    if not 1 <= k <= n:
        raise ValueError(f"k must be in [1, {n}], got {k}")
    if weights is None:
        weights = np.ones(n)
    else:
        weights = np.asarray(weights, dtype=float)
        if weights.shape != (n,) or np.any(weights < 0) or weights.sum() == 0:
            raise ValueError("weights must be (n,) non-negative with positive sum")

    best: KMeansResult | None = None
    for _ in range(max(n_init, 1)):
        result = _lloyd(data, weights, k, gen, max_iter, tol)
        if best is None or result.inertia < best.inertia:
            best = result
    assert best is not None
    return best


def _lloyd(
    data: np.ndarray,
    weights: np.ndarray,
    k: int,
    gen: np.random.Generator,
    max_iter: int,
    tol: float,
) -> KMeansResult:
    data_sq = (data**2).sum(axis=1)
    centers = _kmeanspp_init(data, weights, k, gen, data_sq)
    labels = np.zeros(data.shape[0], dtype=np.int64)
    prev_inertia = np.inf
    iteration = 0
    for iteration in range(1, max_iter + 1):  # noqa: B007  # read after the loop
        d2 = _squared_distances(data, centers, data_sq)
        labels = d2.argmin(axis=1)
        inertia = float((weights * d2[np.arange(data.shape[0]), labels]).sum())

        for j in range(k):
            mask = labels == j
            cluster_weight = weights[mask].sum()
            if cluster_weight > 0:
                centers[j] = (weights[mask, None] * data[mask]).sum(axis=0) / cluster_weight
            else:
                # Reseed an empty cluster at the point farthest from its center.
                farthest = int(d2.min(axis=1).argmax())
                centers[j] = data[farthest]

        if prev_inertia - inertia <= tol * max(prev_inertia, 1e-30):
            prev_inertia = inertia
            break
        prev_inertia = inertia

    d2 = _squared_distances(data, centers, data_sq)
    labels = d2.argmin(axis=1)
    inertia = float((weights * d2[np.arange(data.shape[0]), labels]).sum())
    return KMeansResult(labels=labels, centers=centers, inertia=inertia, iterations=iteration)
